// Package vfs is the minimal filesystem seam the shard I/O paths go
// through: just enough surface (open, create, rename, remove, whole-file
// read/write) for internal/shardfile to stream shard sets and for
// internal/faultfs to inject faults underneath it in tests. It sits at the
// bottom of the dependency graph — no gemmec imports — so both the
// production layers and the fault injector can share it without cycles.
//
// Only shard-file I/O is routed through the interface. Directory
// management (MkdirAll, ReadDir, Glob) and object metadata stay on the os
// package: the failure modes worth injecting — torn shard writes, rotten
// reads, stalled disks — all live on the shard data path.
package vfs

import (
	"io"
	"os"
)

// File is the per-file surface shard I/O needs: sequential reads and
// writes, Seek (the v1 verify-then-rewind pass), and Stat for length
// checks. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Stat() (os.FileInfo, error)
	Name() string
}

// FS opens, creates and renames files. Implementations must be safe for
// concurrent use; OS is the default everywhere an FS is optional.
type FS interface {
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenRW opens the named existing file for reading and writing
	// without truncating it — the seek-and-overwrite surface of the
	// stripe-patching small-write path, which rewrites only the touched
	// stripe offsets of a committed shard file.
	OpenRW(name string) (File, error)
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// Rename atomically moves oldpath to newpath (the commit point of
	// every shard write in this repository).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if necessary.
	WriteFile(name string, data []byte, perm os.FileMode) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) OpenRW(name string) (File, error) { return os.OpenFile(name, os.O_RDWR, 0) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Or returns fsys when non-nil and OS otherwise — the one-liner every
// Opts-style consumer uses to default its FS field.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
