package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gemmec/internal/vfs"
)

func write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestErrorInjectionByOpAndPattern(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.shard_001"), []byte("hello"))
	write(t, filepath.Join(dir, "a.shard_002"), []byte("world"))

	boom := errors.New("boom")
	fs := New(vfs.OS, 1, Rule{Op: OpOpen, Pattern: "*.shard_001", Err: boom})

	if _, err := fs.Open(filepath.Join(dir, "a.shard_001")); !errors.Is(err, boom) {
		t.Fatalf("open shard_001: %v, want boom", err)
	}
	f, err := fs.Open(filepath.Join(dir, "a.shard_002"))
	if err != nil {
		t.Fatalf("open shard_002 (no rule) failed: %v", err)
	}
	b, err := io.ReadAll(f)
	if err != nil || string(b) != "world" {
		t.Fatalf("read through = %q, %v", b, err)
	}
	f.Close()
	if got := fs.Injected(OpOpen); got != 1 {
		t.Fatalf("Injected(OpOpen) = %d, want 1", got)
	}
}

func TestDefaultErrAndCountBudget(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	write(t, p, []byte("x"))
	fs := New(vfs.OS, 1, Rule{Op: OpRead, Count: 2})

	for i := 0; i < 2; i++ {
		if _, err := fs.ReadFile(p); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: %v, want ErrInjected", i, err)
		}
	}
	if b, err := fs.ReadFile(p); err != nil || string(b) != "x" {
		t.Fatalf("read after budget exhausted: %q, %v", b, err)
	}
	if got := fs.Injected(OpAny); got != 2 {
		t.Fatalf("Injected(OpAny) = %d, want 2", got)
	}
}

// The same seed and operation sequence must fire the same faults: that is
// what makes a CI failure replayable locally.
func TestSeedDeterminism(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	write(t, p, []byte("x"))
	run := func(seed int64) []bool {
		fs := New(vfs.OS, seed, Rule{Op: OpRead, Prob: 0.5})
		fired := make([]bool, 64)
		for i := range fired {
			_, err := fs.ReadFile(p)
			fired[i] = err != nil
		}
		return fired
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestTornWholeFileWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "shard.tmp")
	fs := New(vfs.OS, 1, Rule{Op: OpWrite, TornAfter: 3})

	err := fs.WriteFile(p, []byte("abcdef"), 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn WriteFile err = %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(p)
	if rerr != nil || string(got) != "abc" {
		t.Fatalf("on-disk after torn write = %q, %v; want prefix \"abc\"", got, rerr)
	}
}

func TestTornStreamWrite(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	fs := New(vfs.OS, 1, Rule{Op: OpWrite, TornAfter: 4})

	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn Write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if n, err := f.Write([]byte("gh")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write past tear = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	write(t, p, []byte("x"))
	fs := New(vfs.OS, 1, Rule{Op: OpRead, Stall: true, Count: 1})

	done := make(chan error, 1)
	go func() {
		_, err := fs.ReadFile(p)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fs.ReleaseStalls()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released stall should proceed normally, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after ReleaseStalls")
	}
}

func TestLatency(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	write(t, p, []byte("x"))
	fs := New(vfs.OS, 1, Rule{Op: OpRead, Latency: 30 * time.Millisecond, Err: ErrInjected})

	start := time.Now()
	_, err := fs.ReadFile(p)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}
}
