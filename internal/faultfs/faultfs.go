// Package faultfs is the repository's fault-injection harness: a vfs.FS
// that wraps another filesystem and makes configured operations fail,
// lie, lag or hang. The serving path's robustness claims — canceled
// requests free their workers, stalled shards get demoted instead of
// hanging a GET, torn writes never commit — are only claims until a test
// can make a disk misbehave on demand; this package is that disk.
//
// Faults are described as Rules matched per operation and per path
// pattern. Rule firing is deterministic for a given seed: the same rule
// set, seed and operation sequence injects the same faults, so a failure
// seen in CI replays locally byte for byte.
//
//	fs := faultfs.New(vfs.OS, 42,
//	    faultfs.Rule{Op: faultfs.OpRead, Pattern: "*.shard_001", Stall: true},
//	    faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.tmp", Prob: 0.1, Err: io.ErrShortWrite},
//	)
//
// Stalled operations block until ReleaseStalls is called (tests release
// them during cleanup so nothing leaks past the test body).
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path"
	"path/filepath"
	"sync"
	"time"

	"gemmec/internal/vfs"
)

// ErrInjected is the default error injected by rules that do not carry
// their own Err.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names one filesystem operation class a Rule can arm.
type Op string

const (
	OpOpen   Op = "open"
	OpCreate Op = "create"
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	// OpAny arms the rule for every operation class.
	OpAny Op = "any"
)

// Rule describes one fault. A rule fires when its Op and Pattern match an
// operation, its Prob coin (seeded, see New) comes up, and its Count
// budget is not exhausted. Exactly one of the fault kinds is applied, in
// this order of precedence: Stall, then TornAfter (writes only), then
// Err; Latency composes with all of them (the sleep happens first).
type Rule struct {
	// Pattern is a path.Match pattern tested against both the full path
	// and its base name. Empty matches everything.
	Pattern string
	// Op selects the operation class; OpAny (or empty) arms all classes.
	Op Op
	// Prob is the firing probability per matching event in (0, 1]; 0
	// means always fire.
	Prob float64
	// Count caps how many times the rule fires; 0 is unlimited.
	Count int
	// Err is the error to inject; nil selects ErrInjected.
	Err error
	// Latency delays the operation before it proceeds (or fails).
	Latency time.Duration
	// Stall blocks the operation until ReleaseStalls; the operation then
	// proceeds normally. This is the "disk that stopped answering" fault
	// the per-shard read deadline exists for.
	Stall bool
	// TornAfter, for write-class rules, lets the first TornAfter bytes of
	// the file through, then writes a short fragment of the next write
	// and fails it — a torn write mid-shard.
	TornAfter int64
}

// FS is the fault-injecting filesystem. Safe for concurrent use.
type FS struct {
	inner vfs.FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	count map[Op]int64

	stallOnce sync.Once
	stallC    chan struct{}
}

type ruleState struct {
	Rule
	fired int
}

// New wraps inner with the given rules. All probabilistic decisions come
// from one rand.Rand seeded with seed, so a fixed operation sequence
// injects a fixed fault sequence.
func New(inner vfs.FS, seed int64, rules ...Rule) *FS {
	f := &FS{
		inner:  vfs.Or(inner),
		rng:    rand.New(rand.NewSource(seed)),
		count:  map[Op]int64{},
		stallC: make(chan struct{}),
	}
	for i := range rules {
		f.rules = append(f.rules, &ruleState{Rule: rules[i]})
	}
	return f
}

// ReleaseStalls unblocks every stalled operation, current and future.
// Idempotent; tests call it in cleanup so stalled goroutines drain.
func (f *FS) ReleaseStalls() {
	f.stallOnce.Do(func() { close(f.stallC) })
}

// Injected returns how many faults fired for op (OpAny totals all).
func (f *FS) Injected(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if op == OpAny {
		var n int64
		for _, v := range f.count {
			n += v
		}
		return n
	}
	return f.count[op]
}

// match reports whether the rule arms op on name.
func (r *ruleState) match(op Op, name string) bool {
	if r.Op != OpAny && r.Op != "" && r.Op != op {
		return false
	}
	if r.Pattern == "" {
		return true
	}
	if ok, _ := path.Match(r.Pattern, name); ok {
		return true
	}
	ok, _ := path.Match(r.Pattern, filepath.Base(name))
	return ok
}

// fire finds the first armed rule for (op, name), consumes its budget and
// coin, and returns it. The stall/latency/error application happens in
// the caller, outside f.mu, so a stalled op never blocks the whole FS.
func (f *FS) fire(op Op, name string) *ruleState {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if !r.match(op, name) {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && f.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		f.count[op]++
		return r
	}
	return nil
}

// apply executes the non-write fault kinds of a fired rule and reports
// the error to inject (nil when the rule only delayed or stalled).
func (f *FS) apply(r *ruleState) error {
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Stall {
		<-f.stallC
		return nil
	}
	if r.TornAfter > 0 {
		return nil // torn writes are applied by the file wrapper
	}
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

func (f *FS) Open(name string) (vfs.File, error) {
	if r := f.fire(OpOpen, name); r != nil {
		if err := f.apply(r); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

// OpenRW opens for in-place read/write (the stripe-patch path). It arms
// OpOpen rules at open time; once open, the returned file routes reads
// through OpRead rules and writes through OpWrite rules (including
// TornAfter — a patch torn mid-stripe), same as Create-d files.
func (f *FS) OpenRW(name string) (vfs.File, error) {
	if r := f.fire(OpOpen, name); r != nil {
		if err := f.apply(r); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
	}
	file, err := f.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

func (f *FS) Create(name string) (vfs.File, error) {
	if r := f.fire(OpCreate, name); r != nil {
		if err := f.apply(r); err != nil {
			return nil, &os.PathError{Op: "create", Path: name, Err: err}
		}
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if r := f.fire(OpRename, newpath); r != nil {
		if err := f.apply(r); err != nil {
			return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if r := f.fire(OpRemove, name); r != nil {
		if err := f.apply(r); err != nil {
			return &os.PathError{Op: "remove", Path: name, Err: err}
		}
	}
	return f.inner.Remove(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if r := f.fire(OpRead, name); r != nil {
		if err := f.apply(r); err != nil {
			return nil, &os.PathError{Op: "read", Path: name, Err: err}
		}
	}
	return f.inner.ReadFile(name)
}

func (f *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if r := f.fire(OpWrite, name); r != nil {
		if err := f.apply(r); err != nil {
			return &os.PathError{Op: "write", Path: name, Err: err}
		}
		if r.TornAfter > 0 && int64(len(data)) > r.TornAfter {
			// Tear the whole-file write: persist the prefix, report failure.
			f.inner.WriteFile(name, data[:r.TornAfter], perm) //nolint:errcheck
			return &os.PathError{Op: "write", Path: name,
				Err: fmt.Errorf("%w: torn after %d of %d bytes", ErrInjected, r.TornAfter, len(data))}
		}
	}
	return f.inner.WriteFile(name, data, perm)
}

// faultFile applies read/write rules to per-file traffic.
type faultFile struct {
	vfs.File
	fs      *FS
	name    string
	written int64
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if r := ff.fs.fire(OpRead, ff.name); r != nil {
		if err := ff.fs.apply(r); err != nil {
			return 0, err
		}
	}
	return ff.File.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.fire(OpWrite, ff.name); r != nil {
		if err := ff.fs.apply(r); err != nil {
			return 0, err
		}
		if r.TornAfter > 0 {
			if ff.written >= r.TornAfter {
				return 0, fmt.Errorf("%w: torn write to %s at byte %d",
					ErrInjected, ff.name, ff.written)
			}
			if remain := r.TornAfter - ff.written; int64(len(p)) > remain {
				n, _ := ff.File.Write(p[:remain])
				ff.written += int64(n)
				return n, fmt.Errorf("%w: torn write to %s after %d bytes",
					ErrInjected, ff.name, ff.written)
			}
		}
	}
	n, err := ff.File.Write(p)
	ff.written += int64(n)
	return n, err
}
