// Package device simulates an accelerator-resident erasure-coding workflow,
// reproducing the §3 motivation of the paper: data increasingly lives on
// accelerators (GPU training state, accelerator-native applications), and
// erasure-coding it on the host forces expensive device<->host transfers.
// An erasure code implemented via an ML library runs where the data already
// is; a host-only custom library cannot.
//
// The simulation is deliberately physical: "device memory" is a separate
// allocation arena, transfers are real byte copies performed through a
// bandwidth-throttled channel (so H2D/D2H cost shows up in real measured
// time, with a configurable bandwidth ratio standing in for PCIe being
// slower than HBM), and "device kernels" are the same compiled te kernels —
// which is exactly the paper's portability claim: one declaration, any
// backend.
package device

import (
	"fmt"
	"time"
)

// Device models one accelerator with its own memory space.
type Device struct {
	name string
	// hostBandwidth throttles transfers: a factor f >= 1 makes every
	// transferred byte cost f times its memcpy time, emulating an
	// interconnect slower than local memory (PCIe 4.0 x16 ~ 32 GB/s vs
	// hundreds of GB/s of HBM). f == 1 is a plain copy.
	slowdown int

	// Accounting for experiments.
	bytesH2D, bytesD2H int64
	transferTime       time.Duration
	allocBytes         int64
}

// New creates a device whose host link is `slowdown` times slower than a
// local memory copy. slowdown must be >= 1.
func New(name string, slowdown int) (*Device, error) {
	if slowdown < 1 {
		return nil, fmt.Errorf("device: slowdown %d must be >= 1", slowdown)
	}
	return &Device{name: name, slowdown: slowdown}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Buffer is device-resident memory. The bytes live in host RAM (this is a
// simulation) but are only legally touched by device kernels and the
// transfer methods; Data exposes them to kernels.
type Buffer struct {
	dev  *Device
	data []byte
}

// Alloc allocates zeroed device memory.
func (d *Device) Alloc(n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("device: alloc %d bytes", n)
	}
	d.allocBytes += int64(n)
	return &Buffer{dev: d, data: make([]byte, n)}, nil
}

// Len returns the buffer size.
func (b *Buffer) Len() int { return len(b.data) }

// Data exposes the device memory to a kernel launched on the owning
// device. Treat as device-only: host code should go through CopyToHost.
func (b *Buffer) Data() []byte { return b.data }

// transfer copies n bytes with the device's modeled link slowdown: the copy
// runs `slowdown` times so the wall-clock cost scales accordingly. The
// extra passes do real memory work, so measured experiments see a genuine,
// hardware-honest cost rather than a sleep.
func (d *Device) transfer(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("device: transfer size mismatch %d vs %d", len(dst), len(src))
	}
	start := time.Now()
	for pass := 0; pass < d.slowdown; pass++ {
		copy(dst, src)
	}
	d.transferTime += time.Since(start)
	return nil
}

// CopyToDevice moves host bytes into device memory (H2D).
func (d *Device) CopyToDevice(dst *Buffer, src []byte) error {
	if dst.dev != d {
		return fmt.Errorf("device: buffer belongs to %s, not %s", dst.dev.name, d.name)
	}
	if err := d.transfer(dst.data, src); err != nil {
		return err
	}
	d.bytesH2D += int64(len(src))
	return nil
}

// CopyToHost moves device bytes into host memory (D2H).
func (d *Device) CopyToHost(dst []byte, src *Buffer) error {
	if src.dev != d {
		return fmt.Errorf("device: buffer belongs to %s, not %s", src.dev.name, d.name)
	}
	if err := d.transfer(dst, src.data); err != nil {
		return err
	}
	d.bytesD2H += int64(len(dst))
	return nil
}

// Stats reports the transfer accounting since construction.
type Stats struct {
	BytesH2D     int64
	BytesD2H     int64
	TransferTime time.Duration
	AllocBytes   int64
}

// Stats returns a snapshot of the device's transfer accounting.
func (d *Device) Stats() Stats {
	return Stats{BytesH2D: d.bytesH2D, BytesD2H: d.bytesD2H, TransferTime: d.transferTime, AllocBytes: d.allocBytes}
}

// ResetStats zeroes the accounting.
func (d *Device) ResetStats() {
	d.bytesH2D, d.bytesD2H, d.transferTime = 0, 0, 0
}
