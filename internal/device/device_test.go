package device

import (
	"bytes"
	"math/rand"
	"testing"

	"gemmec/internal/core"
)

func TestDeviceAllocAndTransfers(t *testing.T) {
	d, err := New("gpu0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "gpu0" {
		t.Error("name wrong")
	}
	if _, err := New("bad", 0); err == nil {
		t.Error("slowdown 0 accepted")
	}
	if _, err := d.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	buf, err := d.Alloc(64)
	if err != nil || buf.Len() != 64 {
		t.Fatal("alloc failed")
	}

	src := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(src)
	if err := d.CopyToDevice(buf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := d.CopyToHost(dst, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("round trip corrupted data")
	}

	st := d.Stats()
	if st.BytesH2D != 64 || st.BytesD2H != 64 || st.AllocBytes != 64 {
		t.Errorf("stats %+v", st)
	}
	if st.TransferTime <= 0 {
		t.Error("transfer time not accounted")
	}
	d.ResetStats()
	if s := d.Stats(); s.BytesH2D != 0 || s.TransferTime != 0 {
		t.Error("reset failed")
	}

	// Size mismatch and foreign-buffer errors.
	if err := d.CopyToDevice(buf, src[:10]); err == nil {
		t.Error("size mismatch accepted")
	}
	other, _ := New("gpu1", 1)
	if err := other.CopyToDevice(buf, src); err == nil {
		t.Error("foreign buffer accepted")
	}
	if err := other.CopyToHost(dst, buf); err == nil {
		t.Error("foreign buffer accepted by CopyToHost")
	}
}

func TestEncodeOnDeviceMatchesHost(t *testing.T) {
	k, r, unit := 6, 3, 4096
	eng, err := core.New(k, r, unit, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := New("gpu0", 4)
	if err != nil {
		t.Fatal(err)
	}
	coder := NewCoder(dev, eng)
	if coder.Engine() != eng {
		t.Error("Engine accessor wrong")
	}

	// "Generate" data on the device (as a training job would).
	dData, err := dev.Alloc(k * unit)
	if err != nil {
		t.Fatal(err)
	}
	rand.New(rand.NewSource(2)).Read(dData.Data())
	dParity, err := dev.Alloc(r * unit)
	if err != nil {
		t.Fatal(err)
	}

	// Native path.
	if err := coder.EncodeOnDevice(dData, dParity); err != nil {
		t.Fatal(err)
	}
	native := append([]byte(nil), dParity.Data()...)
	if dev.Stats().BytesH2D != 0 || dev.Stats().BytesD2H != 0 {
		t.Error("native path transferred bytes")
	}

	// Host path must produce identical parity and account transfers.
	clear(dParity.Data())
	_, _, err = coder.EncodeViaHost(dData, dParity, eng.Encode, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dParity.Data(), native) {
		t.Fatal("host path parity differs")
	}
	st := dev.Stats()
	if st.BytesD2H != int64(k*unit) || st.BytesH2D != int64(r*unit) {
		t.Errorf("transfer accounting %+v", st)
	}

	// Foreign buffers rejected.
	other, _ := New("gpu1", 1)
	foreign, _ := other.Alloc(k * unit)
	if err := coder.EncodeOnDevice(foreign, dParity); err == nil {
		t.Error("foreign data buffer accepted")
	}
	if _, _, err := coder.EncodeViaHost(foreign, dParity, eng.Encode, nil, nil); err == nil {
		t.Error("foreign buffer accepted by EncodeViaHost")
	}
}

func TestReconstructOnDevice(t *testing.T) {
	k, r, unit := 5, 2, 2048
	eng, err := core.New(k, r, unit, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := New("gpu0", 1)
	coder := NewCoder(dev, eng)

	dData, _ := dev.Alloc(k * unit)
	rand.New(rand.NewSource(3)).Read(dData.Data())
	dParity, _ := dev.Alloc(r * unit)
	if err := coder.EncodeOnDevice(dData, dParity); err != nil {
		t.Fatal(err)
	}

	units := make([]*Buffer, k+r)
	for i := 0; i < k; i++ {
		u, _ := dev.Alloc(unit)
		copy(u.Data(), dData.Data()[i*unit:(i+1)*unit])
		units[i] = u
	}
	for i := 0; i < r; i++ {
		u, _ := dev.Alloc(unit)
		copy(u.Data(), dParity.Data()[i*unit:(i+1)*unit])
		units[k+i] = u
	}
	want0 := append([]byte(nil), units[0].Data()...)
	units[0], units[k] = nil, nil
	dev.ResetStats()
	if err := coder.ReconstructOnDevice(units); err != nil {
		t.Fatal(err)
	}
	if units[0] == nil || !bytes.Equal(units[0].Data(), want0) {
		t.Fatal("device reconstruction wrong")
	}
	if st := dev.Stats(); st.BytesH2D != 0 || st.BytesD2H != 0 {
		t.Error("device reconstruction crossed the host link")
	}
	// Validation.
	if err := coder.ReconstructOnDevice(units[:3]); err == nil {
		t.Error("wrong unit count accepted")
	}
	other, _ := New("gpu1", 1)
	foreign, _ := other.Alloc(unit)
	units[1] = foreign
	if err := coder.ReconstructOnDevice(units); err == nil {
		t.Error("foreign unit accepted")
	}
}

func TestEncodeViaHostScratchReuse(t *testing.T) {
	k, r, unit := 4, 2, 1024
	eng, err := core.New(k, r, unit, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := New("gpu0", 1)
	coder := NewCoder(dev, eng)
	dData, _ := dev.Alloc(k * unit)
	dParity, _ := dev.Alloc(r * unit)
	hd, hp, err := coder.EncodeViaHost(dData, dParity, eng.Encode, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hd2, hp2, err := coder.EncodeViaHost(dData, dParity, eng.Encode, hd, hp)
	if err != nil {
		t.Fatal(err)
	}
	if &hd2[0] != &hd[0] || &hp2[0] != &hp[0] {
		t.Error("scratch buffers reallocated")
	}
}
