package device

import (
	"fmt"
)

// Codec is the coder subset the device layer drives. Both *core.Engine and
// the public *gemmec.Code satisfy it, so the same device workflows run over
// either layer (or over a test double) without depending on a concrete
// type.
type Codec interface {
	K() int
	R() int
	UnitSize() int
	Encode(data, parity []byte) error
	Reconstruct(units [][]byte) error
}

// Coder runs a gemmec codec's kernels over device-resident buffers — the
// "accelerator-native erasure coding" §3 of the paper argues for. Because
// the te kernels are generated from a hardware-agnostic declaration, the
// same engine executes on the host and on the simulated device; only the
// buffer residency differs.
type Coder struct {
	dev *Device
	eng Codec
}

// NewCoder attaches a codec to a device.
func NewCoder(dev *Device, eng Codec) *Coder {
	return &Coder{dev: dev, eng: eng}
}

// Engine returns the underlying codec.
func (c *Coder) Engine() Codec { return c.eng }

// EncodeOnDevice encodes entirely in device memory: no transfers.
func (c *Coder) EncodeOnDevice(data, parity *Buffer) error {
	if data.dev != c.dev || parity.dev != c.dev {
		return fmt.Errorf("device: buffers not resident on %s", c.dev.Name())
	}
	return c.eng.Encode(data.Data(), parity.Data())
}

// ReconstructOnDevice rebuilds nil entries among the k+r device-resident
// units entirely in device memory — degraded reads and repairs for
// accelerator-native applications, with zero host traffic. Rebuilt units
// are allocated on the device.
func (c *Coder) ReconstructOnDevice(units []*Buffer) error {
	eng := c.eng
	if len(units) != eng.K()+eng.R() {
		return fmt.Errorf("device: %d units, want k+r=%d", len(units), eng.K()+eng.R())
	}
	views := make([][]byte, len(units))
	for i, u := range units {
		if u == nil {
			continue
		}
		if u.dev != c.dev {
			return fmt.Errorf("device: unit %d not resident on %s", i, c.dev.Name())
		}
		views[i] = u.Data()
	}
	if err := eng.Reconstruct(views); err != nil {
		return err
	}
	for i, u := range units {
		if u != nil {
			continue
		}
		buf, err := c.dev.Alloc(len(views[i]))
		if err != nil {
			return err
		}
		copy(buf.Data(), views[i])
		units[i] = buf
	}
	return nil
}

// EncodeViaHost models the workflow the paper says today's systems are
// stuck with when only a host-only custom EC library exists: copy the data
// stripe to the host (D2H), encode there, and copy the parities back (H2D).
// The encode function is pluggable so baselines can be timed on the host
// leg. Scratch host buffers are reused across calls when capacities allow.
func (c *Coder) EncodeViaHost(data, parity *Buffer, hostEncode func(data, parity []byte) error, hostData, hostParity []byte) ([]byte, []byte, error) {
	if data.dev != c.dev || parity.dev != c.dev {
		return hostData, hostParity, fmt.Errorf("device: buffers not resident on %s", c.dev.Name())
	}
	if cap(hostData) < data.Len() {
		hostData = make([]byte, data.Len())
	}
	hostData = hostData[:data.Len()]
	if cap(hostParity) < parity.Len() {
		hostParity = make([]byte, parity.Len())
	}
	hostParity = hostParity[:parity.Len()]

	if err := c.dev.CopyToHost(hostData, data); err != nil {
		return hostData, hostParity, err
	}
	if err := hostEncode(hostData, hostParity); err != nil {
		return hostData, hostParity, err
	}
	if err := c.dev.CopyToDevice(parity, hostParity); err != nil {
		return hostData, hostParity, err
	}
	return hostData, hostParity, nil
}
