// Package trace synthesizes and replays storage workloads against the
// simulated cluster — the "measure the performance on real storage
// workloads" leg of §8's future-work plan, at simulation scale. A workload
// is a sequence of puts, gets, node failures and rebuilds; the replayer
// keeps a shadow copy of every object so each read doubles as an
// end-to-end correctness check of the erasure-coding path under churn.
//
// Despite the name, this package is workload *replay*, not request
// tracing: per-request span tracing (the /tracez flight recorder and the
// X-Gemmec-Trace wire headers) lives in internal/obs.
package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gemmec/internal/cluster"
)

// OpKind enumerates workload operations.
type OpKind int

const (
	// OpPut writes an object.
	OpPut OpKind = iota
	// OpGet reads an object back and verifies it.
	OpGet
	// OpFail takes a node down.
	OpFail
	// OpRebuild replaces a down node and rebuilds its shards.
	OpRebuild
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpFail:
		return "fail"
	case OpRebuild:
		return "rebuild"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one workload event.
type Op struct {
	Kind   OpKind
	Object string
	Size   int // for OpPut
	Node   int // for OpFail / OpRebuild
}

// Workload is an ordered op sequence.
type Workload struct {
	Ops []Op
}

// SynthConfig shapes Synthesize's output.
type SynthConfig struct {
	// Objects is the object-name population size.
	Objects int
	// MinSize and MaxSize bound object sizes (log-uniformly distributed,
	// matching the heavy-tailed size distributions of object stores).
	MinSize, MaxSize int
	// ReadFraction of ops are gets (default 0.7); of the rest, most are
	// puts with occasional failure/rebuild pairs.
	ReadFraction float64
	// FailureEvery inserts a fail+rebuild pair roughly every N ops
	// (0 disables failures).
	FailureEvery int
	// Nodes in the target cluster (for failure targeting).
	Nodes int
}

// DefaultSynthConfig returns a read-mostly object-store mix.
func DefaultSynthConfig(nodes int) SynthConfig {
	return SynthConfig{
		Objects:      16,
		MinSize:      4 << 10,
		MaxSize:      4 << 20,
		ReadFraction: 0.7,
		FailureEvery: 40,
		Nodes:        nodes,
	}
}

// Synthesize generates a deterministic workload of n ops. Every object is
// put before it is first read, and failures are always repaired before the
// next failure so the cluster never exceeds single-failure degradation
// (multi-failure patterns are exercised directly by the cluster tests).
func Synthesize(seed int64, n int, cfg SynthConfig) Workload {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Objects <= 0 {
		cfg.Objects = 16
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 4 << 10
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	if cfg.ReadFraction <= 0 || cfg.ReadFraction >= 1 {
		cfg.ReadFraction = 0.7
	}

	var w Workload
	written := map[string]bool{}
	downNode := -1
	name := func(i int) string { return fmt.Sprintf("obj-%03d", i) }
	sizeFor := func() int {
		lo, hi := float64(cfg.MinSize), float64(cfg.MaxSize)
		// log-uniform in [lo, hi]
		u := rng.Float64()
		return int(lo * pow(hi/lo, u))
	}

	for len(w.Ops) < n {
		if cfg.FailureEvery > 0 && len(w.Ops) > 0 && len(w.Ops)%cfg.FailureEvery == 0 && cfg.Nodes > 0 {
			if downNode < 0 {
				downNode = rng.Intn(cfg.Nodes)
				w.Ops = append(w.Ops, Op{Kind: OpFail, Node: downNode})
			} else {
				w.Ops = append(w.Ops, Op{Kind: OpRebuild, Node: downNode})
				downNode = -1
			}
			continue
		}
		obj := name(rng.Intn(cfg.Objects))
		if written[obj] && rng.Float64() < cfg.ReadFraction {
			w.Ops = append(w.Ops, Op{Kind: OpGet, Object: obj})
		} else {
			w.Ops = append(w.Ops, Op{Kind: OpPut, Object: obj, Size: sizeFor()})
			written[obj] = true
		}
	}
	// Leave the cluster healthy.
	if downNode >= 0 {
		w.Ops = append(w.Ops, Op{Kind: OpRebuild, Node: downNode})
	}
	return w
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// Stats aggregates a replay.
type Stats struct {
	Puts, Gets    int
	DegradedGets  int
	Fails         int
	Rebuilds      int
	BytesWritten  int64
	BytesRead     int64
	RepairedBytes int64
	RepairTraffic int64
	Elapsed       time.Duration
}

// Replay executes the workload against the cluster, verifying every read
// against a shadow copy. It fails fast on any divergence — a replay is as
// much a correctness harness as a performance one.
func Replay(c *cluster.Cluster, w Workload, seed int64) (Stats, error) {
	var st Stats
	rng := rand.New(rand.NewSource(seed))
	shadow := map[string][]byte{}
	start := time.Now()
	for i, op := range w.Ops {
		switch op.Kind {
		case OpPut:
			data := make([]byte, op.Size)
			rng.Read(data)
			if err := c.Put(op.Object, data); err != nil {
				return st, fmt.Errorf("trace: op %d put %s: %w", i, op.Object, err)
			}
			shadow[op.Object] = data
			st.Puts++
			st.BytesWritten += int64(op.Size)
		case OpGet:
			want, ok := shadow[op.Object]
			if !ok {
				return st, fmt.Errorf("trace: op %d reads unwritten object %s", i, op.Object)
			}
			got, degraded, err := c.Get(op.Object)
			if err != nil {
				return st, fmt.Errorf("trace: op %d get %s: %w", i, op.Object, err)
			}
			if !bytes.Equal(got, want) {
				return st, fmt.Errorf("trace: op %d: object %s corrupted", i, op.Object)
			}
			st.Gets++
			if degraded {
				st.DegradedGets++
			}
			st.BytesRead += int64(len(got))
		case OpFail:
			if err := c.FailNode(op.Node); err != nil {
				return st, fmt.Errorf("trace: op %d fail node %d: %w", i, op.Node, err)
			}
			st.Fails++
		case OpRebuild:
			if err := c.ReplaceNode(op.Node); err != nil {
				return st, fmt.Errorf("trace: op %d replace node %d: %w", i, op.Node, err)
			}
			rst, err := c.Rebuild(op.Node)
			if err != nil {
				return st, fmt.Errorf("trace: op %d rebuild node %d: %w", i, op.Node, err)
			}
			st.Rebuilds++
			st.RepairedBytes += rst.BytesWritten
			st.RepairTraffic += rst.BytesRead
		default:
			return st, fmt.Errorf("trace: op %d has unknown kind %d", i, op.Kind)
		}
	}
	st.Elapsed = time.Since(start)
	return st, nil
}
