package trace

import (
	"testing"

	"gemmec/internal/cluster"
)

func TestSynthesizeDeterministicAndWellFormed(t *testing.T) {
	cfg := DefaultSynthConfig(9)
	a := Synthesize(7, 200, cfg)
	b := Synthesize(7, 200, cfg)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("not deterministic in length")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs between same-seed runs", i)
		}
	}
	c := Synthesize(8, 200, cfg)
	same := true
	for i := range a.Ops {
		if i < len(c.Ops) && a.Ops[i] != c.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}

	// Well-formedness: reads only after writes, failures always repaired,
	// at most one node down at a time.
	written := map[string]bool{}
	down := -1
	for i, op := range a.Ops {
		switch op.Kind {
		case OpPut:
			if op.Size < cfg.MinSize || op.Size > cfg.MaxSize {
				t.Fatalf("op %d: size %d outside [%d,%d]", i, op.Size, cfg.MinSize, cfg.MaxSize)
			}
			written[op.Object] = true
		case OpGet:
			if !written[op.Object] {
				t.Fatalf("op %d reads unwritten %s", i, op.Object)
			}
		case OpFail:
			if down >= 0 {
				t.Fatalf("op %d fails node %d while %d still down", i, op.Node, down)
			}
			down = op.Node
		case OpRebuild:
			if down != op.Node {
				t.Fatalf("op %d rebuilds node %d but %d is down", i, op.Node, down)
			}
			down = -1
		}
	}
	if down >= 0 {
		t.Error("workload leaves a node down")
	}
}

func TestSynthesizeDefaultsApplied(t *testing.T) {
	w := Synthesize(1, 50, SynthConfig{Nodes: 9})
	if len(w.Ops) < 50 {
		t.Fatalf("%d ops", len(w.Ops))
	}
	hasGet := false
	for _, op := range w.Ops {
		if op.Kind == OpGet {
			hasGet = true
		}
	}
	if !hasGet {
		t.Error("default config produced no reads")
	}
	for _, k := range []OpKind{OpPut, OpGet, OpFail, OpRebuild, OpKind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestReplayVerifiesAndAccounts(t *testing.T) {
	c, err := cluster.New(9, 4, 2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SynthConfig{
		Objects:      6,
		MinSize:      1000,
		MaxSize:      100_000,
		ReadFraction: 0.6,
		FailureEvery: 25,
		Nodes:        9,
	}
	w := Synthesize(3, 150, cfg)
	st, err := Replay(c, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts == 0 || st.Gets == 0 {
		t.Fatalf("stats %+v look empty", st)
	}
	if st.Fails != st.Rebuilds {
		t.Errorf("fails %d != rebuilds %d", st.Fails, st.Rebuilds)
	}
	if st.Fails > 0 && st.RepairedBytes == 0 {
		t.Error("rebuilds repaired no bytes")
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Error("byte accounting empty")
	}
	if st.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}

	// Replays with failures in flight should report degraded gets
	// sometimes; not guaranteed for every seed, so only sanity-bound it.
	if st.DegradedGets > st.Gets {
		t.Error("degraded count exceeds gets")
	}
}

func TestReplayRejectsMalformed(t *testing.T) {
	c, err := cluster.New(6, 4, 2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(c, Workload{Ops: []Op{{Kind: OpGet, Object: "missing"}}}, 1); err == nil {
		t.Error("read-before-write accepted")
	}
	if _, err := Replay(c, Workload{Ops: []Op{{Kind: OpFail, Node: 99}}}, 1); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := Replay(c, Workload{Ops: []Op{{Kind: OpKind(42)}}}, 1); err == nil {
		t.Error("unknown op accepted")
	}
}
