// Package isal implements a Reed-Solomon coder in the style of Intel's
// Intelligent Storage Acceleration Library (ISA-L): full GF(2^8) arithmetic
// (no bitmatrix conversion), driven by precomputed split-nibble
// multiplication tables and dot-product kernels that carry several parity
// destinations through a single pass over each source.
//
// ISA-L's performance on x86 comes from feeding those nibble tables to
// PSHUFB; pure Go has no byte shuffle, so the kernels here consume the same
// tables one byte at a time. The structure — table pre-expansion at coder
// construction, multi-destination dot products, cache-sized strips — is
// preserved, which is what the paper's comparison shape depends on.
package isal

import (
	"errors"
	"fmt"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

// stripBytes is the strip length processed per kernel invocation, keeping
// the working set (one source strip + up to 4 destination strips) inside
// L1, analogous to ISA-L's internal segmenting.
const stripBytes = 4096

// ErrTooFewShards mirrors rs.ErrTooFewShards for this package.
var ErrTooFewShards = errors.New("isal: fewer than k shards available")

// Coder is an ISA-L-style systematic RS coder over GF(2^8).
type Coder struct {
	k, r   int
	f      *gf.Field
	coding *matrix.Matrix   // r x k
	gen    *matrix.Matrix   // (k+r) x k
	tbls   []gf.NibbleTable // r*k tables, row-major [parity][data]
}

// New builds a coder with ISA-L's Vandermonde-derived systematic generator.
func New(k, r int) (*Coder, error) {
	gen, err := matrix.VandermondeRS(gf.MustField(8), k, r)
	if err != nil {
		return nil, err
	}
	coding, err := matrix.CodingRows(gen, k)
	if err != nil {
		return nil, err
	}
	return fromCoding(coding)
}

// NewWithCoding builds a coder over an explicit r x k coding matrix, so
// cross-library equivalence tests can pin every implementation to one
// generator.
func NewWithCoding(coding *matrix.Matrix) (*Coder, error) {
	if coding.Field().W() != 8 {
		return nil, fmt.Errorf("isal: requires GF(2^8), got w=%d", coding.Field().W())
	}
	return fromCoding(coding.Clone())
}

func fromCoding(coding *matrix.Matrix) (*Coder, error) {
	gen, err := matrix.SystematicGenerator(coding)
	if err != nil {
		return nil, err
	}
	c := &Coder{
		k:      coding.Cols(),
		r:      coding.Rows(),
		f:      coding.Field(),
		coding: coding,
		gen:    gen,
	}
	c.tbls = expandTables(c.f, coding)
	return c, nil
}

// expandTables precomputes the nibble tables for every coefficient,
// ISA-L's ec_init_tables.
func expandTables(f *gf.Field, m *matrix.Matrix) []gf.NibbleTable {
	tbls := make([]gf.NibbleTable, m.Rows()*m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			tbls[i*m.Cols()+j] = f.NibbleTable8(uint8(m.At(i, j)))
		}
	}
	return tbls
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// R returns the number of parity shards.
func (c *Coder) R() int { return c.r }

// CodingMatrix returns a copy of the coding matrix.
func (c *Coder) CodingMatrix() *matrix.Matrix { return c.coding.Clone() }

// dotProd1/2/4 update one, two or four destination strips from a single
// source strip: dst[n][i] ^= tbl[n].Mul(src[i]). Reading the source once
// per group instead of once per parity is ISA-L's gf_Nvect_mad structure.

func dotProd1(t0 gf.NibbleTable, d0, src []byte) {
	for i, b := range src {
		d0[i] ^= t0.Lo[b&0xf] ^ t0.Hi[b>>4]
	}
}

func dotProd2(t0, t1 gf.NibbleTable, d0, d1, src []byte) {
	for i, b := range src {
		lo, hi := b&0xf, b>>4
		d0[i] ^= t0.Lo[lo] ^ t0.Hi[hi]
		d1[i] ^= t1.Lo[lo] ^ t1.Hi[hi]
	}
}

func dotProd4(t0, t1, t2, t3 gf.NibbleTable, d0, d1, d2, d3, src []byte) {
	for i, b := range src {
		lo, hi := b&0xf, b>>4
		d0[i] ^= t0.Lo[lo] ^ t0.Hi[hi]
		d1[i] ^= t1.Lo[lo] ^ t1.Hi[hi]
		d2[i] ^= t2.Lo[lo] ^ t2.Hi[hi]
		d3[i] ^= t3.Lo[lo] ^ t3.Hi[hi]
	}
}

// encodeStrips runs the dot-product kernels: outputs[oi] ^= tbls[oi*numIn+ii] * inputs[ii]
// over equal-length buffers, strip by strip. Outputs must be pre-zeroed.
func encodeStrips(tbls []gf.NibbleTable, inputs, outputs [][]byte, size int) {
	numIn, numOut := len(inputs), len(outputs)
	for off := 0; off < size; off += stripBytes {
		end := off + stripBytes
		if end > size {
			end = size
		}
		for ii := 0; ii < numIn; ii++ {
			src := inputs[ii][off:end]
			oi := 0
			for ; oi+4 <= numOut; oi += 4 {
				dotProd4(
					tbls[(oi+0)*numIn+ii], tbls[(oi+1)*numIn+ii],
					tbls[(oi+2)*numIn+ii], tbls[(oi+3)*numIn+ii],
					outputs[oi][off:end], outputs[oi+1][off:end],
					outputs[oi+2][off:end], outputs[oi+3][off:end], src)
			}
			for ; oi+2 <= numOut; oi += 2 {
				dotProd2(tbls[(oi+0)*numIn+ii], tbls[(oi+1)*numIn+ii],
					outputs[oi][off:end], outputs[oi+1][off:end], src)
			}
			for ; oi < numOut; oi++ {
				dotProd1(tbls[oi*numIn+ii], outputs[oi][off:end], src)
			}
		}
	}
}

func checkShards(shards [][]byte, want int, allowNil bool) (int, error) {
	if len(shards) != want {
		return 0, fmt.Errorf("isal: have %d shards, want %d", len(shards), want)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("isal: shard %d is nil", i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("isal: shard %d has %d bytes, others %d", i, len(s), size)
		}
	}
	if size <= 0 {
		return 0, errors.New("isal: no shard data")
	}
	return size, nil
}

// Encode fills shards[k:] (parity) from shards[:k] (data).
func (c *Coder) Encode(shards [][]byte) error {
	size, err := checkShards(shards, c.k+c.r, false)
	if err != nil {
		return err
	}
	for _, p := range shards[c.k:] {
		clear(p)
	}
	encodeStrips(c.tbls, shards[:c.k], shards[c.k:], size)
	return nil
}

// EncodeStripe encodes from a contiguous data stripe (k units back to back)
// into a contiguous parity stripe (r units), the layout §5 of the paper
// argues storage systems should provide to GEMM-shaped coders.
func (c *Coder) EncodeStripe(data, parity []byte, unitSize int) error {
	if unitSize <= 0 || len(data) != c.k*unitSize || len(parity) != c.r*unitSize {
		return fmt.Errorf("isal: stripe geometry mismatch (unit=%d data=%d parity=%d)", unitSize, len(data), len(parity))
	}
	inputs := make([][]byte, c.k)
	for i := range inputs {
		inputs[i] = data[i*unitSize : (i+1)*unitSize]
	}
	outputs := make([][]byte, c.r)
	for i := range outputs {
		outputs[i] = parity[i*unitSize : (i+1)*unitSize]
		clear(outputs[i])
	}
	encodeStrips(c.tbls, inputs, outputs, unitSize)
	return nil
}

// EncodeUpdate accumulates one data shard's contribution into the parity
// shards, mirroring ISA-L's ec_encode_data_update: callers zero the
// parities, then feed data shards in any order as they arrive, and the
// parities are complete once all k have been applied. This lets encoding
// overlap data arrival instead of buffering the whole stripe.
func (c *Coder) EncodeUpdate(shardIdx int, shard []byte, parity [][]byte) error {
	if shardIdx < 0 || shardIdx >= c.k {
		return fmt.Errorf("isal: shard index %d out of range [0,%d)", shardIdx, c.k)
	}
	if len(parity) != c.r {
		return fmt.Errorf("isal: %d parity shards, want r=%d", len(parity), c.r)
	}
	for i, p := range parity {
		if len(p) != len(shard) {
			return fmt.Errorf("isal: parity %d has %d bytes, shard has %d", i, len(p), len(shard))
		}
	}
	if len(shard) == 0 {
		return errors.New("isal: empty shard")
	}
	tbls := make([]gf.NibbleTable, c.r)
	for p := 0; p < c.r; p++ {
		tbls[p] = c.tbls[p*c.k+shardIdx]
	}
	for off := 0; off < len(shard); off += stripBytes {
		end := off + stripBytes
		if end > len(shard) {
			end = len(shard)
		}
		src := shard[off:end]
		pi := 0
		for ; pi+4 <= c.r; pi += 4 {
			dotProd4(tbls[pi], tbls[pi+1], tbls[pi+2], tbls[pi+3],
				parity[pi][off:end], parity[pi+1][off:end], parity[pi+2][off:end], parity[pi+3][off:end], src)
		}
		for ; pi+2 <= c.r; pi += 2 {
			dotProd2(tbls[pi], tbls[pi+1], parity[pi][off:end], parity[pi+1][off:end], src)
		}
		for ; pi < c.r; pi++ {
			dotProd1(tbls[pi], parity[pi][off:end], src)
		}
	}
	return nil
}

// Reconstruct rebuilds every nil shard in place, allocating fresh buffers,
// exactly as rs.Coder.Reconstruct does but through the optimized kernels.
func (c *Coder) Reconstruct(shards [][]byte) error {
	size, err := checkShards(shards, c.k+c.r, true)
	if err != nil {
		return err
	}
	var survivors, lost []int
	for i, s := range shards {
		if s != nil {
			survivors = append(survivors, i)
		} else {
			lost = append(lost, i)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	if len(survivors) < c.k {
		return fmt.Errorf("isal: %d survivors for k=%d: %w", len(survivors), c.k, ErrTooFewShards)
	}
	survivors = survivors[:c.k]

	dm, err := matrix.DecodeMatrix(c.gen, c.k, survivors)
	if err != nil {
		return err
	}
	lostRows, err := c.gen.SelectRows(lost)
	if err != nil {
		return err
	}
	rec, err := lostRows.Mul(dm)
	if err != nil {
		return err
	}
	tbls := expandTables(c.f, rec)
	inputs := make([][]byte, c.k)
	for i, s := range survivors {
		inputs[i] = shards[s]
	}
	outputs := make([][]byte, len(lost))
	for i := range outputs {
		outputs[i] = make([]byte, size)
	}
	encodeStrips(tbls, inputs, outputs, size)
	for i, shard := range lost {
		shards[shard] = outputs[i]
	}
	return nil
}
