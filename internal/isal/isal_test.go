package isal

import (
	"bytes"
	"math/rand"
	"testing"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
	"gemmec/internal/rs"
)

func TestEncodeMatchesRSOracle(t *testing.T) {
	// Pin both coders to the same Cauchy matrix; parities must be
	// byte-identical.
	for _, kr := range [][2]int{{4, 2}, {8, 3}, {10, 4}, {3, 5}} {
		k, r := kr[0], kr[1]
		oracle, err := rs.New(k, r, rs.ConstructionCauchy)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewWithCoding(oracle.CodingMatrix())
		if err != nil {
			t.Fatal(err)
		}
		size := 5000 // crosses a strip boundary
		a := oracle.AllocShards(size)
		b := oracle.AllocShards(size)
		rng := rand.New(rand.NewSource(int64(k*100 + r)))
		for i := 0; i < k; i++ {
			rng.Read(a[i])
			copy(b[i], a[i])
		}
		if err := oracle.Encode(a); err != nil {
			t.Fatal(err)
		}
		if err := c.Encode(b); err != nil {
			t.Fatal(err)
		}
		for i := k; i < k+r; i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("k=%d r=%d: parity %d differs from oracle", k, r, i-k)
			}
		}
	}
}

func TestDefaultConstructionRoundTrip(t *testing.T) {
	k, r := 6, 3
	c, err := New(k, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != k || c.R() != r {
		t.Fatal("K/R wrong")
	}
	size := 1024
	shards := make([][]byte, k+r)
	rng := rand.New(rand.NewSource(7))
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, len(shards))
	for i := range shards {
		orig[i] = append([]byte(nil), shards[i]...)
	}

	// Random erasure patterns up to r losses.
	for trial := 0; trial < 40; trial++ {
		work := make([][]byte, len(shards))
		perm := rng.Perm(k + r)
		nLost := 1 + rng.Intn(r)
		lostSet := map[int]bool{}
		for _, i := range perm[:nLost] {
			lostSet[i] = true
		}
		for i := range shards {
			if !lostSet[i] {
				work[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range work {
			if !bytes.Equal(work[i], orig[i]) {
				t.Fatalf("trial %d: shard %d wrong", trial, i)
			}
		}
	}
}

func TestEncodeStripeMatchesSharded(t *testing.T) {
	k := 5
	// r=4 exercises dotProd4 exactly; other values cover the 2-wide and
	// 1-wide tails.
	for _, rr := range []int{1, 2, 3, 4, 5, 7} {
		c, err := New(k, rr)
		if err != nil {
			t.Fatal(err)
		}
		unit := 2048
		rng := rand.New(rand.NewSource(int64(rr)))
		data := make([]byte, k*unit)
		rng.Read(data)

		parity := make([]byte, rr*unit)
		if err := c.EncodeStripe(data, parity, unit); err != nil {
			t.Fatal(err)
		}

		shards := make([][]byte, k+rr)
		for i := 0; i < k; i++ {
			shards[i] = data[i*unit : (i+1)*unit]
		}
		for i := 0; i < rr; i++ {
			shards[k+i] = make([]byte, unit)
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rr; i++ {
			if !bytes.Equal(parity[i*unit:(i+1)*unit], shards[k+i]) {
				t.Fatalf("r=%d: stripe parity %d mismatch", rr, i)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	c, _ := New(3, 2)
	if err := c.Encode(make([][]byte, 4)); err == nil {
		t.Error("wrong count accepted")
	}
	shards := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 4), make([]byte, 8), make([]byte, 8)}
	if err := c.Encode(shards); err == nil {
		t.Error("mismatched sizes accepted")
	}
	shards[2] = nil
	if err := c.Encode(shards); err == nil {
		t.Error("nil data shard accepted by Encode")
	}
	if err := c.EncodeStripe(make([]byte, 10), make([]byte, 10), 8); err == nil {
		t.Error("bad stripe geometry accepted")
	}
	all := make([][]byte, 5)
	if err := c.Reconstruct(all); err == nil {
		t.Error("all-nil reconstruct accepted")
	}
	lost := [][]byte{nil, nil, nil, make([]byte, 8), make([]byte, 8)}
	if err := c.Reconstruct(lost); err == nil {
		t.Error("too many erasures accepted")
	}
	f4 := gf.MustField(4)
	m4, _ := matrix.Cauchy(f4, 2, 3)
	if _, err := NewWithCoding(m4); err == nil {
		t.Error("w=4 coding matrix accepted")
	}
}

func TestEncodeUpdateMatchesEncode(t *testing.T) {
	for _, r := range []int{1, 2, 3, 4, 5} {
		k := 6
		c, err := New(k, r)
		if err != nil {
			t.Fatal(err)
		}
		size := 5000
		rng := rand.New(rand.NewSource(int64(r)))
		shards := make([][]byte, k+r)
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < k {
				rng.Read(shards[i])
			}
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}

		// Streaming arrival in random order.
		parity := make([][]byte, r)
		for i := range parity {
			parity[i] = make([]byte, size)
		}
		for _, i := range rng.Perm(k) {
			if err := c.EncodeUpdate(i, shards[i], parity); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < r; i++ {
			if !bytes.Equal(parity[i], shards[k+i]) {
				t.Fatalf("r=%d: streaming parity %d differs from batch encode", r, i)
			}
		}
	}
}

func TestEncodeUpdateValidation(t *testing.T) {
	c, _ := New(3, 2)
	shard := make([]byte, 64)
	parity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := c.EncodeUpdate(-1, shard, parity); err == nil {
		t.Error("negative index accepted")
	}
	if err := c.EncodeUpdate(3, shard, parity); err == nil {
		t.Error("index out of range accepted")
	}
	if err := c.EncodeUpdate(0, shard, parity[:1]); err == nil {
		t.Error("wrong parity count accepted")
	}
	if err := c.EncodeUpdate(0, shard, [][]byte{make([]byte, 64), make([]byte, 32)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := c.EncodeUpdate(0, nil, [][]byte{{}, {}}); err == nil {
		t.Error("empty shard accepted")
	}
}

func TestReconstructNoErasures(t *testing.T) {
	c, _ := New(3, 2)
	shards := make([][]byte, 5)
	for i := range shards {
		shards[i] = make([]byte, 16)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
}
