package isal

import (
	"math/rand"
	"testing"
)

func BenchmarkEncodeStripe(b *testing.B) {
	c, err := New(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	unit := 128 << 10
	data := make([]byte, 10*unit)
	rand.New(rand.NewSource(1)).Read(data)
	parity := make([]byte, 4*unit)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeStripe(data, parity, unit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOne(b *testing.B) {
	c, err := New(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	unit := 128 << 10
	shards := make([][]byte, 14)
	rng := rand.New(rand.NewSource(2))
	for i := range shards {
		shards[i] = make([]byte, unit)
		if i < 10 {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(unit))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, 14)
		copy(work, shards)
		work[0] = nil
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}
