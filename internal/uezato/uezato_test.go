package uezato

import (
	"bytes"
	"math/rand"
	"testing"

	"gemmec/internal/bitmatrix"
	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

func randProgramMatrix(rng *rand.Rand, rows, cols int) *bitmatrix.BitMatrix {
	bm := bitmatrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Intn(2) == 1 {
				bm.Set(i, j, true)
			}
		}
	}
	return bm
}

func progOutputsViaNaive(bm *bitmatrix.BitMatrix, planes [][]byte, planeSize int) [][]byte {
	out := make([][]byte, bm.Rows())
	for i := range out {
		out[i] = make([]byte, planeSize)
		for _, j := range bm.RowOnes(i) {
			for b := 0; b < planeSize; b++ {
				out[i][b] ^= planes[j][b]
			}
		}
	}
	return out
}

func TestFromBitMatrixAndXORCount(t *testing.T) {
	bm := bitmatrix.New(2, 4)
	bm.Set(0, 0, true)
	bm.Set(0, 2, true)
	bm.Set(1, 1, true)
	p := FromBitMatrix(bm)
	if p.NumInputs != 4 || p.NumOutputs != 2 {
		t.Fatal("shape wrong")
	}
	// out0 has 2 operands (1 XOR), out1 has 1 operand (0 XORs).
	if p.XORCount() != 1 {
		t.Fatalf("XORCount=%d want 1", p.XORCount())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestCSEPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	planeSize := 96
	for trial := 0; trial < 25; trial++ {
		rows := 2 + rng.Intn(20)
		cols := 2 + rng.Intn(40)
		bm := randProgramMatrix(rng, rows, cols)
		planes := make([][]byte, cols)
		for i := range planes {
			planes[i] = make([]byte, planeSize)
			rng.Read(planes[i])
		}
		want := progOutputsViaNaive(bm, planes, planeSize)

		p := FromBitMatrix(bm)
		before := p.XORCount()
		p.EliminateCommonSubexpressions()
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after CSE: %v", trial, err)
		}
		if p.XORCount() > before {
			t.Fatalf("trial %d: CSE increased XOR count %d -> %d", trial, before, p.XORCount())
		}
		out := make([][]byte, rows)
		for i := range out {
			out[i] = make([]byte, planeSize)
		}
		for _, block := range []int{8, 16, 64, 1024} {
			execProgram(p, block, planeSize, planes, out, make([]byte, len(p.Temps)*block))
			for i := range out {
				if !bytes.Equal(out[i], want[i]) {
					t.Fatalf("trial %d block %d: output %d wrong", trial, block, i)
				}
			}
		}
	}
}

func TestCSEReducesXORsOnRealCode(t *testing.T) {
	f := gf.MustField(8)
	coding, err := matrix.CauchyGood(f, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := FromBitMatrix(bitmatrix.FromGF(coding))
	before := p.XORCount()
	p.EliminateCommonSubexpressions()
	after := p.XORCount()
	if after >= before {
		t.Fatalf("CSE did not reduce XORs on k=10 r=4 w=8: %d -> %d", before, after)
	}
	t.Logf("XOR count %d -> %d (%.1f%% reduction)", before, after, 100*float64(before-after)/float64(before))
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	p := &Program{NumInputs: 2, NumOutputs: 1, Outputs: [][]Ref{{{Input, 5}}}}
	if p.Validate() == nil {
		t.Error("out-of-range input ref accepted")
	}
	p = &Program{NumInputs: 2, NumOutputs: 1, Outputs: [][]Ref{{{Temp, 0}}}}
	if p.Validate() == nil {
		t.Error("undefined temp ref accepted")
	}
	p = &Program{NumInputs: 2, NumOutputs: 1,
		Temps:   []TempOp{{A: Ref{Temp, 0}, B: Ref{Input, 0}}},
		Outputs: [][]Ref{{{Input, 0}}}}
	if p.Validate() == nil {
		t.Error("self-referencing temp accepted")
	}
	p = &Program{NumInputs: 1, NumOutputs: 2, Outputs: [][]Ref{{}}}
	if p.Validate() == nil {
		t.Error("wrong output count accepted")
	}
	p = &Program{NumInputs: 1, NumOutputs: 1, Outputs: [][]Ref{{{RefKind(9), 0}}}}
	if p.Validate() == nil {
		t.Error("unknown ref kind accepted")
	}
}

func TestCoderMatchesReference(t *testing.T) {
	for _, cfg := range []struct{ k, r, w int }{{8, 2, 8}, {10, 4, 8}, {4, 3, 4}} {
		c, err := New(cfg.k, cfg.r, cfg.w)
		if err != nil {
			t.Fatal(err)
		}
		unit := 8 * cfg.w * 16
		l, _ := bitmatrix.NewLayout(cfg.k, cfg.r, cfg.w, unit)
		rng := rand.New(rand.NewSource(int64(cfg.k + cfg.r)))
		data := make([]byte, l.DataLen())
		rng.Read(data)
		parity := make([]byte, l.ParityLen())
		if err := c.EncodeStripe(data, parity, unit); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, l.ParityLen())
		if err := bitmatrix.EncodeReference(bitmatrix.FromGF(c.CodingMatrix()), l, data, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parity, want) {
			t.Fatalf("k=%d r=%d w=%d: stripe encode mismatch", cfg.k, cfg.r, cfg.w)
		}

		// Sharded API must agree with the stripe API.
		dunits := make([][]byte, cfg.k)
		for i := range dunits {
			dunits[i] = data[i*unit : (i+1)*unit]
		}
		punits := make([][]byte, cfg.r)
		for i := range punits {
			punits[i] = make([]byte, unit)
		}
		if err := c.Encode(dunits, punits); err != nil {
			t.Fatal(err)
		}
		for i := range punits {
			if !bytes.Equal(punits[i], want[i*unit:(i+1)*unit]) {
				t.Fatalf("sharded parity %d mismatch", i)
			}
		}
	}
}

func TestWithoutCSEStillCorrect(t *testing.T) {
	a, err := New(6, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(6, 3, 8, WithoutCSE())
	if err != nil {
		t.Fatal(err)
	}
	rawA, optA := a.XORCounts()
	rawB, optB := b.XORCounts()
	if rawA != rawB {
		t.Error("raw counts should match")
	}
	if optA >= rawA {
		t.Error("CSE coder should have fewer XORs than raw")
	}
	if optB != rawB {
		t.Error("WithoutCSE coder should keep the raw count")
	}
	unit := 1024
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 6*unit)
	rng.Read(data)
	pa := make([]byte, 3*unit)
	pb := make([]byte, 3*unit)
	if err := a.EncodeStripe(data, pa, unit); err != nil {
		t.Fatal(err)
	}
	if err := b.EncodeStripe(data, pb, unit); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa, pb) {
		t.Error("CSE changed encode output")
	}
}

func TestBlockingFactorsEquivalent(t *testing.T) {
	unit := 4096
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 8*unit)
	rng.Read(data)
	var first []byte
	for _, block := range []int{64, 512, 2048, 1 << 16} {
		c, err := New(8, 3, 8, WithBlockBytes(block))
		if err != nil {
			t.Fatal(err)
		}
		if c.BlockBytes() != block {
			t.Fatal("BlockBytes accessor wrong")
		}
		parity := make([]byte, 3*unit)
		if err := c.EncodeStripe(data, parity, unit); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = parity
		} else if !bytes.Equal(first, parity) {
			t.Fatalf("block=%d produced different parity", block)
		}
	}
}

func TestCoderValidation(t *testing.T) {
	if _, err := New(4, 2, 8, WithBlockBytes(7)); err == nil {
		t.Error("unaligned block accepted")
	}
	if _, err := New(4, 2, 8, WithBlockBytes(0)); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := New(0, 2, 8); err == nil {
		t.Error("k=0 accepted")
	}
	c, _ := New(4, 2, 8)
	if c.K() != 4 || c.R() != 2 || c.W() != 8 {
		t.Error("accessors wrong")
	}
	if c.Program() == nil {
		t.Error("Program nil")
	}
	if err := c.EncodeStripe(make([]byte, 10), make([]byte, 10), 64); err == nil {
		t.Error("bad stripe accepted")
	}
	if err := c.Encode(make([][]byte, 3), nil); err == nil {
		t.Error("wrong data count accepted")
	}
	data := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64), make([]byte, 32)}
	parity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := c.Encode(data, parity); err == nil {
		t.Error("ragged data accepted")
	}
	if err := c.Reconstruct(make([][]byte, 3)); err == nil {
		t.Error("wrong unit count accepted")
	}
}

func TestDecoderProgramCache(t *testing.T) {
	k, r, w := 5, 2, 8
	c, err := New(k, r, w)
	if err != nil {
		t.Fatal(err)
	}
	unit := 256
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, k*unit)
	rng.Read(data)
	parity := make([]byte, r*unit)
	if err := c.EncodeStripe(data, parity, unit); err != nil {
		t.Fatal(err)
	}
	run := func(lost ...int) {
		t.Helper()
		units := make([][]byte, k+r)
		for i := 0; i < k; i++ {
			units[i] = data[i*unit : (i+1)*unit]
		}
		for i := 0; i < r; i++ {
			units[k+i] = parity[i*unit : (i+1)*unit]
		}
		for _, l := range lost {
			units[l] = nil
		}
		if err := c.Reconstruct(units); err != nil {
			t.Fatal(err)
		}
	}
	run(0)
	run(0) // same pattern: cache hit
	if got := len(c.decoders); got != 1 {
		t.Fatalf("decoder cache has %d entries after repeated pattern, want 1", got)
	}
	run(1, 3)
	if got := len(c.decoders); got != 2 {
		t.Fatalf("decoder cache has %d entries, want 2", got)
	}
}

func TestReconstructAllPatterns(t *testing.T) {
	k, r, w := 5, 3, 8
	c, err := New(k, r, w)
	if err != nil {
		t.Fatal(err)
	}
	unit := 256
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, k*unit)
	rng.Read(data)
	parity := make([]byte, r*unit)
	if err := c.EncodeStripe(data, parity, unit); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, k+r)
	for i := 0; i < k; i++ {
		orig[i] = data[i*unit : (i+1)*unit]
	}
	for i := 0; i < r; i++ {
		orig[k+i] = parity[i*unit : (i+1)*unit]
	}

	for trial := 0; trial < 60; trial++ {
		units := make([][]byte, k+r)
		perm := rng.Perm(k + r)
		nLost := 1 + rng.Intn(r)
		lostSet := map[int]bool{}
		for _, i := range perm[:nLost] {
			lostSet[i] = true
		}
		for i := range units {
			if !lostSet[i] {
				units[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(units); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range units {
			if !bytes.Equal(units[i], orig[i]) {
				t.Fatalf("trial %d: unit %d wrong", trial, i)
			}
		}
	}

	// Too many erasures must fail.
	units := make([][]byte, k+r)
	for i := r + 1; i < k+r; i++ {
		units[i] = append([]byte(nil), orig[i]...)
	}
	if err := c.Reconstruct(units); err == nil {
		t.Error("too many erasures accepted")
	}
	// No erasures is a no-op.
	complete := make([][]byte, k+r)
	for i := range complete {
		complete[i] = append([]byte(nil), orig[i]...)
	}
	if err := c.Reconstruct(complete); err != nil {
		t.Fatal(err)
	}
}
