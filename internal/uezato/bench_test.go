package uezato

import (
	"math/rand"
	"testing"
)

func benchStripe(b *testing.B, opts ...Option) (*Coder, []byte, []byte) {
	b.Helper()
	c, err := New(10, 4, 8, opts...)
	if err != nil {
		b.Fatal(err)
	}
	unit := 128 << 10
	data := make([]byte, 10*unit)
	rand.New(rand.NewSource(1)).Read(data)
	return c, data, make([]byte, 4*unit)
}

func BenchmarkEncodeCSE(b *testing.B) {
	c, data, parity := benchStripe(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeStripe(data, parity, 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeNoCSE(b *testing.B) {
	c, data, parity := benchStripe(b, WithoutCSE())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeStripe(data, parity, 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSECompile(b *testing.B) {
	// The program-optimization cost itself (per coder construction).
	for i := 0; i < b.N; i++ {
		if _, err := New(10, 4, 8); err != nil {
			b.Fatal(err)
		}
	}
}
