package uezato

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gemmec/internal/bitmatrix"
	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

// DefaultBlockBytes is the default cache-blocking factor. The paper sweeps
// this parameter for the Uezato baseline and finds 2 KB typically best on
// its Xeon D platform (§6.1).
const DefaultBlockBytes = 2048

// Coder encodes and reconstructs with an optimized XOR program executed in
// cache-sized blocks.
type Coder struct {
	k, r, w    int
	blockBytes int
	coding     *matrix.Matrix
	gen        *matrix.Matrix
	prog       *Program
	rawXORs    int // XOR count before CSE, for the optimization-report APIs

	mu       sync.Mutex
	decoders map[string]*Program // CSE-optimized programs per erasure pattern
}

// Option configures a Coder.
type Option func(*Coder)

// WithBlockBytes sets the cache-blocking factor in bytes (must be a
// positive multiple of 8).
func WithBlockBytes(n int) Option {
	return func(c *Coder) { c.blockBytes = n }
}

// WithoutCSE disables common-subexpression elimination, leaving the naive
// program. Used by the ablation experiments.
func WithoutCSE() Option {
	return func(c *Coder) { c.rawXORs = -1 } // sentinel consumed in build
}

// New builds a (k, r) coder over GF(2^w) with the normalized Cauchy matrix.
func New(k, r, w int, opts ...Option) (*Coder, error) {
	f, err := gf.NewField(uint(w))
	if err != nil {
		return nil, err
	}
	coding, err := matrix.CauchyGood(f, r, k)
	if err != nil {
		return nil, err
	}
	return NewWithCoding(coding, opts...)
}

// NewWithCoding builds a coder over an explicit coding matrix.
func NewWithCoding(coding *matrix.Matrix, opts ...Option) (*Coder, error) {
	gen, err := matrix.SystematicGenerator(coding)
	if err != nil {
		return nil, err
	}
	c := &Coder{
		k:          coding.Cols(),
		r:          coding.Rows(),
		w:          int(coding.Field().W()),
		blockBytes: DefaultBlockBytes,
		coding:     coding.Clone(),
		gen:        gen,
		decoders:   map[string]*Program{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.blockBytes <= 0 || c.blockBytes%8 != 0 {
		return nil, fmt.Errorf("uezato: block bytes %d must be a positive multiple of 8", c.blockBytes)
	}
	skipCSE := c.rawXORs == -1
	c.prog = FromBitMatrix(bitmatrix.FromGF(coding))
	c.rawXORs = c.prog.XORCount()
	if !skipCSE {
		c.prog.EliminateCommonSubexpressions()
	}
	if err := c.prog.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// K returns the number of data units.
func (c *Coder) K() int { return c.k }

// R returns the number of parity units.
func (c *Coder) R() int { return c.r }

// W returns the field word size.
func (c *Coder) W() int { return c.w }

// BlockBytes returns the configured blocking factor.
func (c *Coder) BlockBytes() int { return c.blockBytes }

// CodingMatrix returns a copy of the r x k coding matrix.
func (c *Coder) CodingMatrix() *matrix.Matrix { return c.coding.Clone() }

// XORCounts reports the per-byte XOR operation counts before and after
// common-subexpression elimination — the optimization's headline metric.
func (c *Coder) XORCounts() (raw, optimized int) {
	return c.rawXORs, c.prog.XORCount()
}

// Program returns the optimized XOR program (shared, do not mutate).
func (c *Coder) Program() *Program { return c.prog }

// execProgram runs prog block-by-block: for each block of the plane axis,
// every temp and output is computed over just that block before moving on,
// so temps live in a small reusable scratch arena that stays cache-resident.
func execProgram(prog *Program, blockBytes, planeSize int, inPlanes, outPlanes [][]byte, scratch []byte) {
	need := len(prog.Temps) * blockBytes
	if len(scratch) < need {
		panic(fmt.Sprintf("uezato: scratch %d < needed %d", len(scratch), need))
	}
	temp := func(i, n int) []byte { return scratch[i*blockBytes : i*blockBytes+n] }

	for off := 0; off < planeSize; off += blockBytes {
		n := blockBytes
		if off+n > planeSize {
			n = planeSize - off
		}
		operand := func(r Ref) []byte {
			if r.Kind == Input {
				return inPlanes[r.Idx][off : off+n]
			}
			return temp(r.Idx, n)
		}
		for i, t := range prog.Temps {
			dst := temp(i, n)
			a, b := operand(t.A), operand(t.B)
			for x := 0; x < n; x++ {
				dst[x] = a[x] ^ b[x]
			}
		}
		for oi, out := range prog.Outputs {
			dst := outPlanes[oi][off : off+n]
			if len(out) == 0 {
				clear(dst)
				continue
			}
			gf.CopyRegion(dst, operand(out[0]))
			for _, r := range out[1:] {
				gf.XorRegion(dst, operand(r))
			}
		}
	}
}

// scratchFor allocates the per-call temp arena.
func (c *Coder) scratchFor(prog *Program) []byte {
	return make([]byte, len(prog.Temps)*c.blockBytes)
}

// EncodeStripe encodes a contiguous data stripe into a contiguous parity
// stripe. unitSize must be a positive multiple of 8*w.
func (c *Coder) EncodeStripe(data, parity []byte, unitSize int) error {
	l, err := bitmatrix.NewLayout(c.k, c.r, c.w, unitSize)
	if err != nil {
		return err
	}
	if err := l.CheckData(data); err != nil {
		return err
	}
	if err := l.CheckParity(parity); err != nil {
		return err
	}
	execProgram(c.prog, c.blockBytes, l.PlaneSize, l.Planes(data, c.k), l.Planes(parity, c.r), c.scratchFor(c.prog))
	return nil
}

// Encode computes parity units from data units given as separate
// allocations, matching the baseline APIs of the other coders.
func (c *Coder) Encode(data, parity [][]byte) error {
	if len(data) != c.k || len(data) == 0 {
		return fmt.Errorf("uezato: %d data units, want k=%d", len(data), c.k)
	}
	unitSize := len(data[0])
	l, err := bitmatrix.NewLayout(c.k, c.r, c.w, unitSize)
	if err != nil {
		return err
	}
	if len(parity) != c.r {
		return fmt.Errorf("uezato: %d parity units, want r=%d", len(parity), c.r)
	}
	inPlanes := make([][]byte, c.k*c.w)
	for u, d := range data {
		if len(d) != unitSize {
			return fmt.Errorf("uezato: data unit %d has %d bytes, want %d", u, len(d), unitSize)
		}
		copy(inPlanes[u*c.w:], l.UnitPlanes(d))
	}
	outPlanes := make([][]byte, c.r*c.w)
	for u, p := range parity {
		if len(p) != unitSize {
			return fmt.Errorf("uezato: parity unit %d has %d bytes, want %d", u, len(p), unitSize)
		}
		copy(outPlanes[u*c.w:], l.UnitPlanes(p))
	}
	execProgram(c.prog, c.blockBytes, l.PlaneSize, inPlanes, outPlanes, c.scratchFor(c.prog))
	return nil
}

// Reconstruct rebuilds every nil unit in place (k data units followed by r
// parity units). The reconstruction program is built and CSE-optimized per
// erasure pattern, as Uezato's library compiles decoders on demand.
func (c *Coder) Reconstruct(units [][]byte) error {
	if len(units) != c.k+c.r {
		return fmt.Errorf("uezato: %d units, want k+r=%d", len(units), c.k+c.r)
	}
	unitSize := -1
	var survivors, lost []int
	for i, u := range units {
		if u == nil {
			lost = append(lost, i)
			continue
		}
		if unitSize == -1 {
			unitSize = len(u)
		} else if len(u) != unitSize {
			return fmt.Errorf("uezato: unit %d size %d, others %d", i, len(u), unitSize)
		}
		survivors = append(survivors, i)
	}
	if len(lost) == 0 {
		return nil
	}
	if len(survivors) < c.k {
		return fmt.Errorf("uezato: %d survivors for k=%d", len(survivors), c.k)
	}
	survivors = survivors[:c.k]
	l, err := bitmatrix.NewLayout(c.k, c.r, c.w, unitSize)
	if err != nil {
		return err
	}

	prog, err := c.decodeProgram(survivors, lost)
	if err != nil {
		return err
	}

	inPlanes := make([][]byte, c.k*c.w)
	for i, s := range survivors {
		copy(inPlanes[i*c.w:], l.UnitPlanes(units[s]))
	}
	outPlanes := make([][]byte, len(lost)*c.w)
	outs := make([][]byte, len(lost))
	for i := range lost {
		outs[i] = make([]byte, unitSize)
		copy(outPlanes[i*c.w:], l.UnitPlanes(outs[i]))
	}
	execProgram(prog, c.blockBytes, l.PlaneSize, inPlanes, outPlanes, make([]byte, len(prog.Temps)*c.blockBytes))
	for i, u := range lost {
		units[u] = outs[i]
	}
	return nil
}

// decodeProgram builds (or returns the cached) CSE-optimized reconstruction
// program for an erasure pattern. Program optimization is the expensive
// part of this library, so steady-state repair of a recurring pattern must
// not recompile — the same policy Uezato's library and our core engine use.
func (c *Coder) decodeProgram(survivors, lost []int) (*Program, error) {
	key := patternKey(survivors, lost)
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.decoders[key]; ok {
		return p, nil
	}
	dm, err := matrix.DecodeMatrix(c.gen, c.k, survivors)
	if err != nil {
		return nil, err
	}
	lostRows, err := c.gen.SelectRows(lost)
	if err != nil {
		return nil, err
	}
	rec, err := lostRows.Mul(dm)
	if err != nil {
		return nil, err
	}
	prog := FromBitMatrix(bitmatrix.FromGF(rec))
	prog.EliminateCommonSubexpressions()
	c.decoders[key] = prog
	return prog, nil
}

func patternKey(survivors, lost []int) string {
	s := append([]int(nil), survivors...)
	l := append([]int(nil), lost...)
	sort.Ints(s)
	sort.Ints(l)
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "s%d,", v)
	}
	for _, v := range l {
		fmt.Fprintf(&b, "l%d,", v)
	}
	return b.String()
}
