// Package uezato implements a bitmatrix erasure coder in the style of
// Uezato's SC'21 work "Accelerating XOR-Based Erasure Coding Using Program
// Optimization Techniques", the stronger of the two custom-library
// baselines the paper compares TVM-EC against.
//
// The idea: treat bitmatrix encoding as a straight-line XOR program
// (each parity plane = XOR of a set of data planes), then apply classic
// compiler optimizations — common-subexpression elimination across the
// parity expressions to shrink the XOR count, plus cache blocking of the
// program's execution so intermediate values stay resident in L1/L2. The
// paper sweeps this library's blocking factor and reports 2 KB as the
// usual optimum (§6.1), a sweep reproduced by experiment E-BLOCK.
package uezato

import (
	"fmt"
	"sort"

	"gemmec/internal/bitmatrix"
)

// RefKind distinguishes the operand spaces of an XOR program.
type RefKind uint8

const (
	// Input refers to a data plane (index in [0, NumInputs)).
	Input RefKind = iota
	// Temp refers to an intermediate plane produced by a TempOp.
	Temp
)

// Ref names one operand plane of the program.
type Ref struct {
	Kind RefKind
	Idx  int
}

func (r Ref) String() string {
	if r.Kind == Input {
		return fmt.Sprintf("in%d", r.Idx)
	}
	return fmt.Sprintf("t%d", r.Idx)
}

// TempOp defines intermediate plane i as A ^ B. Temps are defined in order;
// a temp may reference inputs and previously defined temps only.
type TempOp struct {
	A, B Ref
}

// Program is a straight-line XOR program computing NumOutputs parity planes
// from NumInputs data planes through NumTemps intermediates.
type Program struct {
	NumInputs  int
	NumOutputs int
	Temps      []TempOp
	// Outputs[i] lists the operands whose XOR is parity plane i.
	Outputs [][]Ref
}

// FromBitMatrix builds the unoptimized program: each output is the XOR of
// the input planes whose generator bit is set.
func FromBitMatrix(bm *bitmatrix.BitMatrix) *Program {
	p := &Program{
		NumInputs:  bm.Cols(),
		NumOutputs: bm.Rows(),
		Outputs:    make([][]Ref, bm.Rows()),
	}
	for i := 0; i < bm.Rows(); i++ {
		ones := bm.RowOnes(i)
		refs := make([]Ref, len(ones))
		for n, j := range ones {
			refs[n] = Ref{Input, j}
		}
		p.Outputs[i] = refs
	}
	return p
}

// XORCount returns the number of plane-XOR operations the program performs:
// one per temp, plus len(set)-1 per non-empty output (the first operand is
// a copy, not an XOR). This is the quantity CSE minimizes.
func (p *Program) XORCount() int {
	n := len(p.Temps)
	for _, out := range p.Outputs {
		if len(out) > 1 {
			n += len(out) - 1
		}
	}
	return n
}

// Validate checks referential integrity: temps reference only inputs and
// earlier temps; outputs reference only inputs and defined temps.
func (p *Program) Validate() error {
	checkRef := func(r Ref, before int) error {
		switch r.Kind {
		case Input:
			if r.Idx < 0 || r.Idx >= p.NumInputs {
				return fmt.Errorf("uezato: input ref %d out of range %d", r.Idx, p.NumInputs)
			}
		case Temp:
			if r.Idx < 0 || r.Idx >= before {
				return fmt.Errorf("uezato: temp ref %d not defined yet (have %d)", r.Idx, before)
			}
		default:
			return fmt.Errorf("uezato: unknown ref kind %d", r.Kind)
		}
		return nil
	}
	for i, t := range p.Temps {
		if err := checkRef(t.A, i); err != nil {
			return err
		}
		if err := checkRef(t.B, i); err != nil {
			return err
		}
	}
	if len(p.Outputs) != p.NumOutputs {
		return fmt.Errorf("uezato: %d output sets, want %d", len(p.Outputs), p.NumOutputs)
	}
	for _, out := range p.Outputs {
		for _, r := range out {
			if err := checkRef(r, len(p.Temps)); err != nil {
				return err
			}
		}
	}
	return nil
}

// refID flattens a Ref into a single integer key for pair counting.
func (p *Program) refID(r Ref) int {
	if r.Kind == Input {
		return r.Idx
	}
	return p.NumInputs + r.Idx
}

func (p *Program) idRef(id int) Ref {
	if id < p.NumInputs {
		return Ref{Input, id}
	}
	return Ref{Temp, id - p.NumInputs}
}

// EliminateCommonSubexpressions repeatedly finds the operand pair that
// co-occurs in the most output expressions, hoists it into a temp, and
// rewrites the expressions, until no pair occurs twice. Each rewrite of a
// pair occurring in c >= 2 expressions trades c XORs for 1, so the XOR
// count strictly decreases. This is the matching-based scheduling family
// Uezato builds on (cf. Plank's "Uber-CSHR" and Luo et al.).
func (p *Program) EliminateCommonSubexpressions() {
	for {
		bestA, bestB, bestCount := -1, -1, 1
		// Count co-occurrences of every unordered pair.
		counts := make(map[[2]int]int)
		for _, out := range p.Outputs {
			ids := make([]int, len(out))
			for n, r := range out {
				ids[n] = p.refID(r)
			}
			sort.Ints(ids)
			for x := 0; x < len(ids); x++ {
				for y := x + 1; y < len(ids); y++ {
					key := [2]int{ids[x], ids[y]}
					counts[key]++
					if counts[key] > bestCount {
						bestCount = counts[key]
						bestA, bestB = key[0], key[1]
					}
				}
			}
		}
		if bestA < 0 {
			return
		}
		// Define temp = a ^ b and rewrite every expression containing both.
		tempIdx := len(p.Temps)
		p.Temps = append(p.Temps, TempOp{A: p.idRef(bestA), B: p.idRef(bestB)})
		tref := Ref{Temp, tempIdx}
		for oi, out := range p.Outputs {
			hasA, hasB := false, false
			for _, r := range out {
				id := p.refID(r)
				if id == bestA {
					hasA = true
				}
				if id == bestB {
					hasB = true
				}
			}
			if !hasA || !hasB {
				continue
			}
			rewritten := out[:0]
			for _, r := range out {
				id := p.refID(r)
				if id == bestA || id == bestB {
					continue
				}
				rewritten = append(rewritten, r)
			}
			p.Outputs[oi] = append(rewritten, tref)
		}
	}
}

// String renders the program, one definition per line, for debugging and
// the E-LOC experiment's development-effort accounting.
func (p *Program) String() string {
	s := ""
	for i, t := range p.Temps {
		s += fmt.Sprintf("t%d = %s ^ %s\n", i, t.A, t.B)
	}
	for i, out := range p.Outputs {
		s += fmt.Sprintf("out%d =", i)
		for n, r := range out {
			if n > 0 {
				s += " ^"
			}
			s += " " + r.String()
		}
		s += "\n"
	}
	return s
}
