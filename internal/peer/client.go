package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gemmec/internal/obs"
)

// Operation names for metrics and trace spans — one per Transport method.
const (
	opPutShard  = "put_shard"
	opGetShard  = "get_shard"
	opStatShard = "stat_shard"
	opDelete    = "delete"
	opPutMeta   = "put_meta"
	opGetMeta   = "get_meta"
	opListMeta  = "list_meta"
	opPing      = "ping"
)

// spanName maps an op to its trace-span name. Returning interned
// constants (not "peer."+op) keeps the traced hot path allocation-free.
func spanName(op string) string {
	switch op {
	case opPutShard:
		return "peer.put_shard"
	case opGetShard:
		return "peer.get_shard"
	case opStatShard:
		return "peer.stat_shard"
	case opDelete:
		return "peer.delete"
	case opPutMeta:
		return "peer.put_meta"
	case opListMeta:
		return "peer.list_meta"
	case opPing:
		return "peer.ping"
	default:
		return "peer.op"
	}
}

// Observer receives per-request and health-transition events from a
// Client — the hook the gateway uses to feed peer metrics without the
// peer package importing the metrics registry. Both callbacks must be
// safe for concurrent use; either may be nil.
type Observer struct {
	// OnRequest fires once per HTTP attempt with the operation, the
	// response status (0 for a transport-level failure) and the attempt
	// latency.
	OnRequest func(member Member, op string, code int, d time.Duration)
	// OnDown fires on each healthy→down transition (not on every failure
	// while already down).
	OnDown func(member Member)
}

// SecretHeader carries the shared cluster secret on every internal
// request. Peers with an empty secret accept any value (auth disabled —
// test rigs and single-host demos); peers with a secret reject mismatches
// with 403 before touching disk.
const SecretHeader = "X-Gemmec-Cluster-Key"

// ClientConfig tunes one peer's HTTP transport.
type ClientConfig struct {
	// Secret is the shared cluster secret sent in SecretHeader.
	Secret string
	// OpTimeout bounds small control operations (stat, delete, meta, ping).
	// Shard bodies stream under the caller's context instead — a 64 MiB
	// shard transfer must not be killed by a control-plane deadline — but
	// their response headers must arrive within OpTimeout. Default 5s.
	OpTimeout time.Duration
	// Retries is the number of extra attempts for idempotent control
	// operations after a transport failure. Default 2. Shard bodies are
	// never retried here; the gateway retries at stripe granularity where
	// it can account for quorum.
	Retries int
	// DownCooldown is how long a peer is considered unhealthy after a
	// transport-level failure before traffic is attempted again. Health is
	// advisory — the gateway uses it to order repair sources, not to
	// refuse writes. Default 2s.
	DownCooldown time.Duration
	// MaxIdleConns bounds pooled idle connections to this peer. Default 8.
	MaxIdleConns int
}

func (c *ClientConfig) withDefaults() ClientConfig {
	out := *c
	if out.OpTimeout <= 0 {
		out.OpTimeout = 5 * time.Second
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 2
	}
	if out.DownCooldown <= 0 {
		out.DownCooldown = 2 * time.Second
	}
	if out.MaxIdleConns <= 0 {
		out.MaxIdleConns = 8
	}
	return out
}

// Client speaks the internal shard-transfer API to one peer. It owns a
// pooled http.Transport (connections are reused across shard transfers),
// applies the cluster secret, bounds control operations with OpTimeout +
// bounded backoff retries, and tracks coarse health so gateways can rank
// repair sources without waiting for a fresh timeout on every request.
type Client struct {
	member Member
	cfg    ClientConfig
	httpc  *http.Client
	// downUntil is a unix-nano deadline before which the peer is presumed
	// unhealthy. 0 = healthy.
	downUntil atomic.Int64
	// obsv is the installed Observer (nil until SetObserver).
	obsv atomic.Pointer[Observer]
	// Coarse lifetime counters, exported for /statusz.
	requests atomic.Int64
	failures atomic.Int64
	downs    atomic.Int64
}

var _ Transport = (*Client)(nil)

// NewClient builds a Transport for one member.
func NewClient(m Member, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	tr := &http.Transport{
		MaxIdleConns:          cfg.MaxIdleConns,
		MaxIdleConnsPerHost:   cfg.MaxIdleConns,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: cfg.OpTimeout,
	}
	return &Client{member: m, cfg: cfg, httpc: &http.Client{Transport: tr}}
}

// Member returns the peer this client talks to.
func (c *Client) Member() Member { return c.member }

// Close releases pooled connections.
func (c *Client) Close() {
	if tr, ok := c.httpc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// Healthy reports whether the peer is past its failure cooldown. A true
// result is a hint, not a guarantee; a false result means a recent
// transport failure and the cooldown has not elapsed.
func (c *Client) Healthy() bool {
	return c.downUntil.Load() <= time.Now().UnixNano()
}

func (c *Client) markDown() {
	now := time.Now()
	was := c.downUntil.Swap(now.Add(c.cfg.DownCooldown).UnixNano())
	if was <= now.UnixNano() {
		// healthy → down transition (not a repeat failure inside an
		// existing cooldown): count it and tell the observer.
		c.downs.Add(1)
		if o := c.obsv.Load(); o != nil && o.OnDown != nil {
			o.OnDown(c.member)
		}
	}
}

func (c *Client) markUp() { c.downUntil.Store(0) }

// SetObserver installs the event hook (nil uninstalls). Safe to call
// concurrently with in-flight requests.
func (c *Client) SetObserver(o *Observer) { c.obsv.Store(o) }

// Requests returns the lifetime HTTP attempt count to this peer.
func (c *Client) Requests() int64 { return c.requests.Load() }

// Failures returns lifetime attempts that failed at the transport or
// with a 5xx — the "this peer is hurting" counter for /statusz.
func (c *Client) Failures() int64 { return c.failures.Load() }

// DownTransitions returns lifetime healthy→down transitions.
func (c *Client) DownTransitions() int64 { return c.downs.Load() }

// observe records one attempt's outcome locally and to the Observer.
func (c *Client) observe(op string, code int, d time.Duration) {
	c.requests.Add(1)
	if code == 0 || code >= 500 {
		c.failures.Add(1)
	}
	if o := c.obsv.Load(); o != nil && o.OnRequest != nil {
		o.OnRequest(c.member, op, code, d)
	}
}

func (c *Client) shardURL(key string, gen uint64, idx int) string {
	return fmt.Sprintf("%s/internal/shard/%s/%d/%d", c.member.Addr, url.PathEscape(key), gen, idx)
}

func (c *Client) metaURL(key string) string {
	return c.member.Addr + "/internal/meta/" + url.PathEscape(key)
}

// do issues one request, classifying transport failures as
// ErrUnavailable and updating health. The response is returned with a
// non-error status only; error statuses are drained, closed and mapped.
//
// This is the single choke point for peer observability: every attempt
// records a member-tagged trace span (injecting the trace header so the
// remote PeerAPI can attach its own child spans, merged back here from
// the response) and reports (op, status, latency) to the Observer.
//
// Exception: get_meta records no span. The gateway's majority metadata
// read returns at quorum with straggler GetMeta goroutines still in
// flight, which would race span recording against the pooled trace's
// recycling; the gateway wraps the whole quorum read in one synchronous
// span instead.
func (c *Client) do(req *http.Request, op string) (*http.Response, error) {
	req.Header.Set(SecretHeader, c.cfg.Secret)
	var sp obs.Span
	tr := obs.TraceFromContext(req.Context())
	if tr != nil && op != opGetMeta {
		sp = tr.StartSpan(spanName(op))
		sp.SetMember(c.member.ID)
		req.Header.Set(obs.TraceHeader, tr.WireHeader(sp))
	}
	start := time.Now()
	resp, err := c.httpc.Do(req)
	if err != nil {
		c.markDown()
		c.observe(op, 0, time.Since(start))
		sp.End(err)
		return nil, fmt.Errorf("%w: %s: %v", ErrUnavailable, c.member.Addr, err)
	}
	c.observe(op, resp.StatusCode, time.Since(start))
	if tr != nil && op != opGetMeta {
		tr.AddRemoteSpans(c.member.ID, sp, resp.Header.Get(obs.TraceSpansHeader))
	}
	switch {
	case resp.StatusCode < 300:
		c.markUp()
		sp.End(nil)
		return resp, nil
	case resp.StatusCode == http.StatusNotFound:
		err = ErrShardNotFound
		if strings.Contains(req.URL.Path, "/internal/meta/") {
			err = ErrMetaNotFound
		}
	case resp.StatusCode == http.StatusConflict:
		err = ErrShardExists
	case resp.StatusCode == http.StatusForbidden || resp.StatusCode == http.StatusUnauthorized:
		err = ErrUnauthorized
	default:
		c.markDown()
		err = fmt.Errorf("%w: %s: http %d", ErrUnavailable, c.member.Addr, resp.StatusCode)
	}
	sp.End(err)
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	return nil, err
}

// doRetry runs an idempotent control operation with OpTimeout per attempt
// and bounded backoff across attempts. Only ErrUnavailable is retried:
// not-found and unauthorized are definitive answers.
func (c *Client) doRetry(ctx context.Context, op string, build func(ctx context.Context) (*http.Request, error), handle func(*http.Response) error) error {
	var last error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			// 25ms, 50ms, 100ms... capped; cheap enough that a blip heals
			// within one stripe, short enough that a dead peer doesn't
			// stall a quorum decision.
			backoff := 25 * time.Millisecond << (attempt - 1)
			if backoff > 400*time.Millisecond {
				backoff = 400 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
		}
		err := func() error {
			opCtx, cancel := context.WithTimeout(ctx, c.cfg.OpTimeout)
			defer cancel()
			req, err := build(opCtx)
			if err != nil {
				return err
			}
			resp, err := c.do(req, op)
			if err != nil {
				return err
			}
			defer func() {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
			return handle(resp)
		}()
		if err == nil || !isRetryable(err) || ctx.Err() != nil {
			return err
		}
		last = err
	}
	return last
}

func isRetryable(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// PutShard streams a shard body to the peer. Not retried: the body is a
// one-shot stream fed by the encode pipeline, and the gateway owns the
// quorum decision for failed shards.
func (c *Client) PutShard(ctx context.Context, key string, gen uint64, idx int, size int64, body io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.shardURL(key, gen, idx), body)
	if err != nil {
		return err
	}
	if size >= 0 {
		req.ContentLength = size
	}
	resp, err := c.do(req, opPutShard)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// GetShard opens a shard body. Not retried as a whole (the caller may
// have consumed part of the stream); gateways treat a failed source as a
// demoted shard and reconstruct instead.
func (c *Client) GetShard(ctx context.Context, key string, gen uint64, idx int) (io.ReadCloser, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.shardURL(key, gen, idx), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.do(req, opGetShard)
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.ContentLength, nil
}

// GetShardRange opens bytes [off, off+length) of a shard via an HTTP
// Range request. A peer that answers 206 ships exactly the window it
// serves; a peer that answers 200 (range-unaware) ships the whole
// shard, and the returned body discards the prefix and stops after
// length bytes so the caller sees the window either way. Not retried,
// for the same reason as GetShard.
func (c *Client) GetShardRange(ctx context.Context, key string, gen uint64, idx int, off, length int64) (io.ReadCloser, int64, error) {
	if off < 0 || length <= 0 {
		return nil, 0, fmt.Errorf("peer: bad shard range [off=%d,len=%d)", off, length)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.shardURL(key, gen, idx), nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	resp, err := c.do(req, opGetShard)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode == http.StatusPartialContent {
		return resp.Body, resp.ContentLength, nil
	}
	// Range-unaware peer: full body. Trim it to the window client-side —
	// the prefix is discarded lazily on first read — so correctness never
	// depends on the peer's Range support, only efficiency does.
	size := length
	if resp.ContentLength >= 0 {
		size = resp.ContentLength - off
		if size < 0 {
			size = 0
		}
		if size > length {
			size = length
		}
	}
	return &rangeBody{body: resp.Body, skip: off, remain: length}, size, nil
}

// rangeBody adapts a whole-shard response body into a byte window: the
// first skip bytes are discarded, and reads stop after remain bytes. A
// body shorter than the skip prefix reads as empty — the shard is
// shorter than the requested window and the caller already learned that
// from the size return.
type rangeBody struct {
	body   io.ReadCloser
	skip   int64
	remain int64
}

func (b *rangeBody) Read(p []byte) (int, error) {
	if b.skip > 0 {
		if _, err := io.CopyN(io.Discard, b.body, b.skip); err != nil {
			b.skip = 0
			return 0, err
		}
		b.skip = 0
	}
	if b.remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.body.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *rangeBody) Close() error { return b.body.Close() }

// StatShard reports a shard's size via HEAD.
func (c *Client) StatShard(ctx context.Context, key string, gen uint64, idx int) (int64, error) {
	var size int64
	err := c.doRetry(ctx, opStatShard,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodHead, c.shardURL(key, gen, idx), nil)
		},
		func(resp *http.Response) error {
			n, err := strconv.ParseInt(resp.Header.Get("X-Gemmec-Shard-Size"), 10, 64)
			if err != nil {
				n = resp.ContentLength
			}
			size = n
			return nil
		})
	return size, err
}

// DeleteShard removes one shard generation (idempotent).
func (c *Client) DeleteShard(ctx context.Context, key string, gen uint64, idx int) error {
	return c.deleteURL(ctx, c.shardURL(key, gen, idx))
}

// DeleteObject removes all shards and the metadata replica for key.
func (c *Client) DeleteObject(ctx context.Context, key string) error {
	return c.deleteURL(ctx, c.member.Addr+"/internal/object/"+url.PathEscape(key))
}

func (c *Client) deleteURL(ctx context.Context, u string) error {
	err := c.doRetry(ctx, opDelete,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodDelete, u, nil)
		},
		func(*http.Response) error { return nil })
	if errors.Is(err, ErrShardNotFound) || errors.Is(err, ErrMetaNotFound) {
		return nil // idempotent
	}
	return err
}

// PutMeta atomically replaces the metadata replica for key.
func (c *Client) PutMeta(ctx context.Context, key string, meta []byte) error {
	return c.doRetry(ctx, opPutMeta,
		func(ctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.metaURL(key), strings.NewReader(string(meta)))
			if err != nil {
				return nil, err
			}
			req.ContentLength = int64(len(meta))
			return req, nil
		},
		func(*http.Response) error { return nil })
}

// GetMeta fetches the metadata replica for key.
func (c *Client) GetMeta(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := c.doRetry(ctx, opGetMeta,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, c.metaURL(key), nil)
		},
		func(resp *http.Response) error {
			b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			if err != nil {
				return fmt.Errorf("%w: %s: reading meta: %v", ErrUnavailable, c.member.Addr, err)
			}
			out = b
			return nil
		})
	return out, err
}

// ListMeta returns every metadata key the peer holds, one per line.
func (c *Client) ListMeta(ctx context.Context) ([]string, error) {
	var keys []string
	err := c.doRetry(ctx, opListMeta,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, c.member.Addr+"/internal/meta", nil)
		},
		func(resp *http.Response) error {
			b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			if err != nil {
				return fmt.Errorf("%w: %s: reading meta list: %v", ErrUnavailable, c.member.Addr, err)
			}
			keys = keys[:0]
			for _, line := range strings.Split(string(b), "\n") {
				if line = strings.TrimSpace(line); line != "" {
					keys = append(keys, line)
				}
			}
			return nil
		})
	return keys, err
}

// Ping checks liveness and secret agreement.
func (c *Client) Ping(ctx context.Context) error {
	return c.doRetry(ctx, opPing,
		func(ctx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, c.member.Addr+"/internal/ping", nil)
		},
		func(*http.Response) error { return nil })
}
