// Package peer turns N ecserver processes into one erasure-coded
// cluster: static membership (a list of id=url members), a deterministic
// placement ring mapping every object's k+r shards onto distinct
// members, a Transport seam for the internal shard-transfer API, an HTTP
// client implementation with connection pooling, timeouts, bounded
// retries and health tracking, and a fault-injecting transport double so
// partition, slow-peer and torn-transfer scenarios are deterministic in
// tests — the internal/vfs + internal/faultfs idea generalized from the
// disk seam to the wire.
//
// The package sits below internal/server (which implements the peer API
// handler, the local transport, and the gateway that fans shards out) and
// deliberately knows nothing about stores, manifests or HTTP handlers:
// only members, placements and shard/meta transfer operations.
package peer

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Member is one cluster node: a stable integer identity and the base URL
// of its ecserver process (e.g. http://10.0.0.7:8080). Identity and
// address are separate on purpose — a rebuilt node keeps its ID even when
// it comes back on a new address, so placements computed before the
// failure still name it.
type Member struct {
	ID   int
	Addr string
}

// ParseMembers parses a static membership spec of the form
// "0=http://a:8080,1=http://b:8080,2=http://c:8080".
func ParseMembers(spec string) ([]Member, error) {
	var ms []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := parseMember(part)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("peer: empty membership spec")
	}
	return ms, nil
}

// LoadMembers reads a membership file: one "id=url" entry per line, blank
// lines and #-comments ignored. A file (rather than a flag) is how a
// fleet shares one membership document across all peers.
func LoadMembers(path string) ([]Member, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []Member
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m, err := parseMember(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("peer: %s: no members", path)
	}
	return ms, nil
}

func parseMember(s string) (Member, error) {
	id, addr, ok := strings.Cut(s, "=")
	if !ok {
		return Member{}, fmt.Errorf("peer: member %q is not id=url", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(id))
	if err != nil || n < 0 {
		return Member{}, fmt.Errorf("peer: member %q has invalid id", s)
	}
	addr = strings.TrimSuffix(strings.TrimSpace(addr), "/")
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return Member{}, fmt.Errorf("peer: member %q address must be http(s)://", s)
	}
	return Member{ID: n, Addr: addr}, nil
}

// Ring is the cluster's deterministic shard-placement function over a
// static membership. Placement is pure — every gateway computes the same
// answer from the same membership with no coordination — which is what
// lets any peer serve as the client-facing gateway.
type Ring struct {
	members []Member // sorted by ID
	byID    map[int]Member
}

// NewRing builds a ring over members. IDs must be unique.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("peer: ring needs at least one member")
	}
	r := &Ring{byID: make(map[int]Member, len(members))}
	for _, m := range members {
		if _, dup := r.byID[m.ID]; dup {
			return nil, fmt.Errorf("peer: duplicate member id %d", m.ID)
		}
		r.byID[m.ID] = m
		r.members = append(r.members, m)
	}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].ID < r.members[j].ID })
	return r, nil
}

// Members returns the membership, sorted by ID.
func (r *Ring) Members() []Member { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Member returns the member with the given ID.
func (r *Ring) Member(id int) (Member, bool) {
	m, ok := r.byID[id]
	return m, ok
}

// Placement maps an object key to the member IDs holding its n shards:
// shard i lands on the (h+i)'th member of the sorted ring, where h hashes
// the key. Consecutive shards of one object land on distinct members (the
// failure-domain invariant internal/cluster's rotating placement
// established locally), and the hashed start spreads different objects'
// load across the fleet. n must not exceed the membership size — a stripe
// cannot put two shards in one failure domain.
func (r *Ring) Placement(key string, n int) ([]int, error) {
	if n > len(r.members) {
		return nil, fmt.Errorf("peer: %d members cannot hold %d shards in distinct failure domains",
			len(r.members), n)
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	start := int(h.Sum64() % uint64(len(r.members)))
	p := make([]int, n)
	for i := range p {
		p[i] = r.members[(start+i)%len(r.members)].ID
	}
	return p, nil
}
