package peer

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// FaultOp names one Transport operation for fault-rule matching.
type FaultOp string

const (
	OpPutShard     FaultOp = "put-shard"
	OpGetShard     FaultOp = "get-shard"
	OpStatShard    FaultOp = "stat-shard"
	OpDeleteShard  FaultOp = "delete-shard"
	OpDeleteObject FaultOp = "delete-object"
	OpPutMeta      FaultOp = "put-meta"
	OpGetMeta      FaultOp = "get-meta"
	OpListMeta     FaultOp = "list-meta"
	OpPing         FaultOp = "ping"
)

// FaultRule injects one deterministic fault into matching transport
// calls — the wire analogue of faultfs.Rule. A rule matches when Op and
// KeyPrefix both match (empty = wildcard); among matching calls it fires
// on calls numbered [After, After+Count) in arrival order (Count 0 =
// every call from After on). Exactly one of Err / TornAfter / Delay is
// typically set, but they compose: Delay sleeps first, then Err
// short-circuits, then TornAfter arms a mid-stream cut.
type FaultRule struct {
	Op        FaultOp
	KeyPrefix string
	After     int
	Count     int
	// Err fails the call before it reaches the wrapped transport.
	Err error
	// Delay sleeps before the call proceeds — a slow peer, not a dead one.
	Delay time.Duration
	// TornAfter cuts a shard body after this many bytes: an upload's
	// source reader fails mid-stream (the peer must abort atomically), a
	// download's body fails mid-stream (the gateway must demote and
	// reconstruct). Only meaningful for put-shard / get-shard.
	TornAfter int64

	seen int
}

func (r *FaultRule) matches(op FaultOp, key string) bool {
	if r.Op != "" && r.Op != op {
		return false
	}
	if r.KeyPrefix != "" && !strings.HasPrefix(key, r.KeyPrefix) {
		return false
	}
	n := r.seen
	r.seen++
	if n < r.After {
		return false
	}
	return r.Count == 0 || n < r.After+r.Count
}

// FaultTransport wraps a Transport with deterministic fault injection so
// partition, slow-peer and torn-transfer scenarios replay identically
// under -race. Rules are evaluated in order; the first match fires.
// Partition() is a standing everything-fails switch layered on top of the
// rules, Heal() lifts it.
type FaultTransport struct {
	inner Transport

	mu          sync.Mutex
	rules       []*FaultRule
	partitioned bool
	calls       map[FaultOp]int
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner.
func NewFaultTransport(inner Transport) *FaultTransport {
	return &FaultTransport{inner: inner, calls: make(map[FaultOp]int)}
}

// AddRule arms a fault rule. Rules persist until RemoveRules.
func (f *FaultTransport) AddRule(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rr := r
	f.rules = append(f.rules, &rr)
}

// RemoveRules clears all rules (the partition switch is separate).
func (f *FaultTransport) RemoveRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Partition makes every operation fail with ErrUnavailable until Heal.
func (f *FaultTransport) Partition() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = true
}

// Heal lifts a Partition.
func (f *FaultTransport) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = false
}

// Calls reports how many times op was attempted (including faulted
// calls) — lets tests assert "no traffic during partition healed work".
func (f *FaultTransport) Calls(op FaultOp) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// check runs rule matching for one call and returns (injected error,
// torn-cut byte count, delay). A zero torn value means no cut.
func (f *FaultTransport) check(op FaultOp, key string) (error, int64, time.Duration) {
	f.mu.Lock()
	f.calls[op]++
	if f.partitioned {
		f.mu.Unlock()
		return fmt.Errorf("%w: injected partition", ErrUnavailable), 0, 0
	}
	for _, r := range f.rules {
		if r.matches(op, key) {
			err, torn, delay := r.Err, r.TornAfter, r.Delay
			f.mu.Unlock()
			return err, torn, delay
		}
	}
	f.mu.Unlock()
	return nil, 0, 0
}

func (f *FaultTransport) gate(ctx context.Context, op FaultOp, key string) (int64, error) {
	err, torn, delay := f.check(op, key)
	if delay > 0 {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(delay):
		}
	}
	return torn, err
}

// tornReader fails with ErrUnavailable after limit bytes.
type tornReader struct {
	r      io.Reader
	remain int64
}

func (t *tornReader) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, fmt.Errorf("%w: injected torn transfer", ErrUnavailable)
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.r.Read(p)
	t.remain -= int64(n)
	if err == nil && t.remain <= 0 {
		err = fmt.Errorf("%w: injected torn transfer", ErrUnavailable)
	}
	return n, err
}

type tornBody struct {
	tornReader
	io.Closer
}

func (f *FaultTransport) PutShard(ctx context.Context, key string, gen uint64, idx int, size int64, body io.Reader) error {
	torn, err := f.gate(ctx, OpPutShard, key)
	if err != nil {
		return err
	}
	if torn > 0 {
		// The peer sees the source die mid-upload; its atomic-write
		// discipline must leave no partial shard behind.
		return f.inner.PutShard(ctx, key, gen, idx, size, &tornReader{r: body, remain: torn})
	}
	return f.inner.PutShard(ctx, key, gen, idx, size, body)
}

func (f *FaultTransport) GetShard(ctx context.Context, key string, gen uint64, idx int) (io.ReadCloser, int64, error) {
	torn, err := f.gate(ctx, OpGetShard, key)
	if err != nil {
		return nil, 0, err
	}
	rc, size, err := f.inner.GetShard(ctx, key, gen, idx)
	if err != nil {
		return nil, 0, err
	}
	if torn > 0 {
		return &tornBody{tornReader{r: rc, remain: torn}, rc}, size, nil
	}
	return rc, size, nil
}

// GetShardRange shares get-shard fault rules with GetShard: a rule on
// OpGetShard fires for both, so partition and torn-download scenarios
// cover ranged reads without separate plumbing. TornAfter counts bytes
// of the window, not of the whole shard.
func (f *FaultTransport) GetShardRange(ctx context.Context, key string, gen uint64, idx int, off, length int64) (io.ReadCloser, int64, error) {
	torn, err := f.gate(ctx, OpGetShard, key)
	if err != nil {
		return nil, 0, err
	}
	rc, size, err := f.inner.GetShardRange(ctx, key, gen, idx, off, length)
	if err != nil {
		return nil, 0, err
	}
	if torn > 0 {
		return &tornBody{tornReader{r: rc, remain: torn}, rc}, size, nil
	}
	return rc, size, nil
}

func (f *FaultTransport) StatShard(ctx context.Context, key string, gen uint64, idx int) (int64, error) {
	if _, err := f.gate(ctx, OpStatShard, key); err != nil {
		return 0, err
	}
	return f.inner.StatShard(ctx, key, gen, idx)
}

func (f *FaultTransport) DeleteShard(ctx context.Context, key string, gen uint64, idx int) error {
	if _, err := f.gate(ctx, OpDeleteShard, key); err != nil {
		return err
	}
	return f.inner.DeleteShard(ctx, key, gen, idx)
}

func (f *FaultTransport) DeleteObject(ctx context.Context, key string) error {
	if _, err := f.gate(ctx, OpDeleteObject, key); err != nil {
		return err
	}
	return f.inner.DeleteObject(ctx, key)
}

func (f *FaultTransport) PutMeta(ctx context.Context, key string, meta []byte) error {
	if _, err := f.gate(ctx, OpPutMeta, key); err != nil {
		return err
	}
	return f.inner.PutMeta(ctx, key, meta)
}

func (f *FaultTransport) GetMeta(ctx context.Context, key string) ([]byte, error) {
	if _, err := f.gate(ctx, OpGetMeta, key); err != nil {
		return nil, err
	}
	return f.inner.GetMeta(ctx, key)
}

func (f *FaultTransport) ListMeta(ctx context.Context) ([]string, error) {
	if _, err := f.gate(ctx, OpListMeta, ""); err != nil {
		return nil, err
	}
	return f.inner.ListMeta(ctx)
}

func (f *FaultTransport) Ping(ctx context.Context) error {
	if _, err := f.gate(ctx, OpPing, ""); err != nil {
		return err
	}
	return f.inner.Ping(ctx)
}
