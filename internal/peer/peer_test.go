package peer

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("0=http://a:8080, 2=http://b:8080 ,1=https://c:9090/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d members, want 3", len(ms))
	}
	if ms[2].Addr != "https://c:9090" {
		t.Fatalf("trailing slash not trimmed: %q", ms[2].Addr)
	}
	for _, bad := range []string{"", "x=http://a", "-1=http://a", "0=ftp://a", "0", "0=,1=http://b"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) = nil error, want failure", bad)
		}
	}
}

func TestLoadMembers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	doc := "# the fleet\n0=http://a:8080\n\n1=http://b:8080\n2=http://c:8080\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := LoadMembers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d members, want 3", len(ms))
	}
	if err := os.WriteFile(path, []byte("0=http://a\nnot a member\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMembers(path); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("bad line not reported with line number: %v", err)
	}
}

func TestRingRejectsDuplicates(t *testing.T) {
	_, err := NewRing([]Member{{ID: 1, Addr: "http://a"}, {ID: 1, Addr: "http://b"}})
	if err == nil {
		t.Fatal("duplicate member IDs accepted")
	}
}

// TestPlacementDeterministicAndDistinct is the property every gateway
// depends on: placement is a pure function of (membership, key), and one
// stripe never puts two shards in the same failure domain.
func TestPlacementDeterministicAndDistinct(t *testing.T) {
	members := []Member{
		{ID: 0, Addr: "http://a"}, {ID: 1, Addr: "http://b"},
		{ID: 2, Addr: "http://c"}, {ID: 5, Addr: "http://d"},
	}
	r1, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership presented in a different order must place identically.
	r2, err := NewRing([]Member{members[3], members[1], members[0], members[2]})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"6f626a", "deadbeef", "00", "ffffffffffff"} {
		p1, err := r1.Placement(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := r2.Placement(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("placement differs across equivalent rings: %v vs %v", p1, p2)
			}
			if seen[p1[i]] {
				t.Fatalf("placement %v reuses member %d", p1, p1[i])
			}
			seen[p1[i]] = true
			if _, ok := r1.Member(p1[i]); !ok {
				t.Fatalf("placement names unknown member %d", p1[i])
			}
		}
	}
	if _, err := r1.Placement("6f", 5); err == nil {
		t.Fatal("placement across more shards than members accepted")
	}
}

// memTransport is a minimal in-memory Transport for fault-wrapper tests.
type memTransport struct {
	shards map[string][]byte
	meta   map[string][]byte
}

func newMemTransport() *memTransport {
	return &memTransport{shards: map[string][]byte{}, meta: map[string][]byte{}}
}

func skey(key string, gen uint64, idx int) string {
	return key + "/" + string(rune('0'+gen)) + "/" + string(rune('0'+idx))
}

func (m *memTransport) PutShard(ctx context.Context, key string, gen uint64, idx int, size int64, body io.Reader) error {
	b, err := io.ReadAll(body)
	if err != nil {
		return err
	}
	m.shards[skey(key, gen, idx)] = b
	return nil
}

func (m *memTransport) GetShard(ctx context.Context, key string, gen uint64, idx int) (io.ReadCloser, int64, error) {
	b, ok := m.shards[skey(key, gen, idx)]
	if !ok {
		return nil, 0, ErrShardNotFound
	}
	return io.NopCloser(strings.NewReader(string(b))), int64(len(b)), nil
}

func (m *memTransport) GetShardRange(ctx context.Context, key string, gen uint64, idx int, off, length int64) (io.ReadCloser, int64, error) {
	b, ok := m.shards[skey(key, gen, idx)]
	if !ok {
		return nil, 0, ErrShardNotFound
	}
	if off > int64(len(b)) {
		off = int64(len(b))
	}
	end := off + length
	if end > int64(len(b)) {
		end = int64(len(b))
	}
	win := b[off:end]
	return io.NopCloser(strings.NewReader(string(win))), int64(len(win)), nil
}

func (m *memTransport) StatShard(ctx context.Context, key string, gen uint64, idx int) (int64, error) {
	b, ok := m.shards[skey(key, gen, idx)]
	if !ok {
		return 0, ErrShardNotFound
	}
	return int64(len(b)), nil
}

func (m *memTransport) DeleteShard(ctx context.Context, key string, gen uint64, idx int) error {
	delete(m.shards, skey(key, gen, idx))
	return nil
}

func (m *memTransport) DeleteObject(ctx context.Context, key string) error {
	for k := range m.shards {
		if strings.HasPrefix(k, key+"/") {
			delete(m.shards, k)
		}
	}
	delete(m.meta, key)
	return nil
}

func (m *memTransport) PutMeta(ctx context.Context, key string, meta []byte) error {
	m.meta[key] = meta
	return nil
}

func (m *memTransport) GetMeta(ctx context.Context, key string) ([]byte, error) {
	b, ok := m.meta[key]
	if !ok {
		return nil, ErrMetaNotFound
	}
	return b, nil
}

func (m *memTransport) ListMeta(ctx context.Context) ([]string, error) {
	var keys []string
	for k := range m.meta {
		keys = append(keys, k)
	}
	return keys, nil
}

func (m *memTransport) Ping(ctx context.Context) error { return nil }

func TestFaultTransportPartition(t *testing.T) {
	ft := NewFaultTransport(newMemTransport())
	ctx := context.Background()
	ft.Partition()
	if err := ft.PutMeta(ctx, "6f", []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("partitioned PutMeta = %v, want ErrUnavailable", err)
	}
	if err := ft.Ping(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("partitioned Ping = %v, want ErrUnavailable", err)
	}
	ft.Heal()
	if err := ft.PutMeta(ctx, "6f", []byte("x")); err != nil {
		t.Fatalf("healed PutMeta = %v", err)
	}
	if got := ft.Calls(OpPutMeta); got != 2 {
		t.Fatalf("Calls(OpPutMeta) = %d, want 2 (faulted calls count)", got)
	}
}

// TestFaultRuleWindow pins the After/Count arithmetic: a rule fires on
// matching calls [After, After+Count) and never outside that window.
func TestFaultRuleWindow(t *testing.T) {
	ft := NewFaultTransport(newMemTransport())
	boom := errors.New("boom")
	ft.AddRule(FaultRule{Op: OpStatShard, After: 1, Count: 2, Err: boom})
	ctx := context.Background()
	want := []bool{false, true, true, false, false}
	for i, wantFail := range want {
		_, err := ft.StatShard(ctx, "6f", 1, 0)
		gotFail := errors.Is(err, boom)
		if gotFail != wantFail {
			t.Fatalf("call %d: failed=%v, want %v", i, gotFail, wantFail)
		}
	}
}

func TestFaultRuleKeyPrefix(t *testing.T) {
	ft := NewFaultTransport(newMemTransport())
	ft.AddRule(FaultRule{Op: OpPutMeta, KeyPrefix: "aa", Err: ErrUnavailable})
	ctx := context.Background()
	if err := ft.PutMeta(ctx, "aabb", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("matching key not faulted: %v", err)
	}
	if err := ft.PutMeta(ctx, "bbaa", nil); err != nil {
		t.Fatalf("non-matching key faulted: %v", err)
	}
}

// TestFaultTornUpload proves a torn PUT body surfaces as a read error to
// the receiving transport — the wire analogue of a sender dying mid-upload.
func TestFaultTornUpload(t *testing.T) {
	inner := newMemTransport()
	ft := NewFaultTransport(inner)
	ft.AddRule(FaultRule{Op: OpPutShard, TornAfter: 4})
	err := ft.PutShard(context.Background(), "6f", 1, 0, 10, strings.NewReader("0123456789"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("torn upload error = %v, want ErrUnavailable", err)
	}
	// memTransport's ReadAll failed, so nothing may be stored.
	if _, err := inner.StatShard(context.Background(), "6f", 1, 0); !errors.Is(err, ErrShardNotFound) {
		t.Fatal("torn upload left a stored shard behind")
	}
}

// TestFaultTornDownload proves a torn GET body fails mid-read, after
// serving exactly TornAfter bytes.
func TestFaultTornDownload(t *testing.T) {
	inner := newMemTransport()
	if err := inner.PutShard(context.Background(), "6f", 1, 0, 10, strings.NewReader("0123456789")); err != nil {
		t.Fatal(err)
	}
	ft := NewFaultTransport(inner)
	ft.AddRule(FaultRule{Op: OpGetShard, TornAfter: 6})
	rc, _, err := ft.GetShard(context.Background(), "6f", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("torn download error = %v, want ErrUnavailable", err)
	}
	if string(b) != "012345" {
		t.Fatalf("torn download served %q, want first 6 bytes", b)
	}
}

func TestFaultDelayHonorsContext(t *testing.T) {
	ft := NewFaultTransport(newMemTransport())
	ft.AddRule(FaultRule{Op: OpPing, Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := ft.Ping(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed call under dead ctx = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored the context")
	}
}
