package peer

import (
	"context"
	"errors"
	"io"
)

// Sentinel errors for the transport seam. The HTTP client maps status
// codes onto these; the gateway branches on them (a missing shard is a
// degraded-read candidate, an unreachable peer is a health event, an auth
// failure is a deployment bug worth failing loudly on).
var (
	// ErrShardNotFound reports that the peer is reachable but does not
	// hold the requested shard (generation).
	ErrShardNotFound = errors.New("peer: shard not found")
	// ErrShardExists reports that the peer already holds a shard at the
	// requested (key, generation, index). Shard writes are first-writer-
	// wins: two gateways racing the same generation cannot interleave
	// bytes, the loser's upload is rejected whole.
	ErrShardExists = errors.New("peer: shard already exists")
	// ErrMetaNotFound reports that the peer holds no metadata replica for
	// the key.
	ErrMetaNotFound = errors.New("peer: metadata not found")
	// ErrUnavailable reports that the peer could not be reached or did not
	// answer in time (dial failure, timeout, 5xx).
	ErrUnavailable = errors.New("peer: unavailable")
	// ErrUnauthorized reports a cluster-secret mismatch.
	ErrUnauthorized = errors.New("peer: unauthorized")
)

// Transport is the shard-transfer seam between a gateway and one peer.
// It is the wire analogue of internal/vfs: internal/server implements it
// over HTTP (Client), over the local PeerStore directly (no loopback
// socket for a gateway's own shards), and tests wrap either in a
// FaultTransport to inject partitions, slow links and torn transfers
// deterministically.
//
// Keys are store-level object keys (hex-encoded names or reserved slab
// keys); gen is the store's crash-atomicity generation; idx is the shard
// index within the stripe. All streaming bodies are verified end-to-end
// by the manifest's checksums, so the transport itself carries no
// integrity metadata.
type Transport interface {
	// PutShard streams one shard body to the peer. The write is atomic on
	// the peer — a torn upload leaves nothing behind — and first-writer-
	// wins: if the (key, gen, idx) shard already exists the call fails
	// with ErrShardExists instead of overwriting, so two writers racing
	// the same generation cannot mix bodies. Repair paths that replace a
	// damaged shard delete it first.
	PutShard(ctx context.Context, key string, gen uint64, idx int, size int64, body io.Reader) error
	// GetShard opens one shard for reading. The caller must close the
	// returned reader. size is the shard's on-disk length.
	GetShard(ctx context.Context, key string, gen uint64, idx int) (body io.ReadCloser, size int64, err error)
	// GetShardRange opens bytes [off, off+length) of one shard — the
	// transfer behind ranged object reads, where each peer ships only the
	// stripes covering the requested window. size is the byte count the
	// body will actually carry; a shard shorter than off+length serves
	// what exists (possibly zero bytes), and the caller — which computed
	// the window from the manifest — treats a short answer as a damaged
	// shard. The caller must close the returned reader.
	GetShardRange(ctx context.Context, key string, gen uint64, idx int, off, length int64) (body io.ReadCloser, size int64, err error)
	// StatShard reports a shard's size without transferring it.
	StatShard(ctx context.Context, key string, gen uint64, idx int) (size int64, err error)
	// DeleteShard removes one shard generation. Missing shards are not an
	// error — deletes are the rollback path and must be idempotent.
	DeleteShard(ctx context.Context, key string, gen uint64, idx int) error
	// DeleteObject removes every shard of every generation of key plus
	// the peer's metadata replica.
	DeleteObject(ctx context.Context, key string) error
	// PutMeta atomically replaces the peer's metadata replica for key.
	PutMeta(ctx context.Context, key string, meta []byte) error
	// GetMeta fetches the peer's metadata replica for key.
	GetMeta(ctx context.Context, key string) ([]byte, error)
	// ListMeta returns the keys of every metadata replica the peer holds.
	ListMeta(ctx context.Context) ([]string, error)
	// Ping checks liveness and secret agreement.
	Ping(ctx context.Context) error
}
