// Package stripe manages contiguous stripe buffers, implementing the
// integration pattern §5 of the paper prescribes for GEMM-shaped coders:
// the encoder owns a contiguous allocation sized for k chunks; incoming
// chunks are copied to their unit offset as they arrive (the storage system
// must copy anyway, to own the memory); once all k chunks have arrived the
// whole region is handed to the kernel with no further copies.
package stripe

import (
	"fmt"
	"sync"
)

// Buffer accumulates k fixed-size chunks into one contiguous allocation.
type Buffer struct {
	k        int
	unitSize int
	buf      []byte
	arrived  []bool
	n        int
}

// NewBuffer allocates a stripe buffer for k units of unitSize bytes.
func NewBuffer(k, unitSize int) (*Buffer, error) {
	if k <= 0 || unitSize <= 0 {
		return nil, fmt.Errorf("stripe: invalid geometry k=%d unit=%d", k, unitSize)
	}
	return &Buffer{
		k:        k,
		unitSize: unitSize,
		buf:      make([]byte, k*unitSize),
		arrived:  make([]bool, k),
	}, nil
}

// K returns the number of units the buffer holds.
func (b *Buffer) K() int { return b.k }

// UnitSize returns the unit size in bytes.
func (b *Buffer) UnitSize() int { return b.unitSize }

// Put copies chunk into unit slot i. It fails if i is out of range, the
// chunk has the wrong size, or the slot is already filled.
func (b *Buffer) Put(i int, chunk []byte) error {
	if i < 0 || i >= b.k {
		return fmt.Errorf("stripe: unit %d out of range [0,%d)", i, b.k)
	}
	if len(chunk) != b.unitSize {
		return fmt.Errorf("stripe: chunk for unit %d has %d bytes, want %d", i, len(chunk), b.unitSize)
	}
	if b.arrived[i] {
		return fmt.Errorf("stripe: unit %d already filled", i)
	}
	copy(b.buf[i*b.unitSize:], chunk)
	b.arrived[i] = true
	b.n++
	return nil
}

// Complete reports whether all k units have arrived.
func (b *Buffer) Complete() bool { return b.n == b.k }

// Missing returns the indices of units not yet received.
func (b *Buffer) Missing() []int {
	var m []int
	for i, a := range b.arrived {
		if !a {
			m = append(m, i)
		}
	}
	return m
}

// Bytes returns the contiguous stripe. It fails until the stripe is
// complete, preventing encoding over garbage.
func (b *Buffer) Bytes() ([]byte, error) {
	if !b.Complete() {
		return nil, fmt.Errorf("stripe: %d of %d units missing", b.k-b.n, b.k)
	}
	return b.buf, nil
}

// Raw returns the whole backing allocation without a completeness check.
// It exists for owners that fill the buffer directly (the streaming
// pipeline reads stripes straight off the wire into it) rather than
// through Put's per-unit arrival tracking; such callers are responsible
// for knowing which bytes are valid.
func (b *Buffer) Raw() []byte { return b.buf }

// Unit returns the slice backing unit i (filled or not).
func (b *Buffer) Unit(i int) ([]byte, error) {
	if i < 0 || i >= b.k {
		return nil, fmt.Errorf("stripe: unit %d out of range [0,%d)", i, b.k)
	}
	return b.buf[i*b.unitSize : (i+1)*b.unitSize], nil
}

// Reset clears arrival state so the allocation can be reused for the next
// stripe. Contents are not zeroed; every byte is overwritten by Put before
// Bytes can succeed.
func (b *Buffer) Reset() {
	for i := range b.arrived {
		b.arrived[i] = false
	}
	b.n = 0
}

// Pool recycles stripe buffers across stripes, as a long-running encoder
// would to avoid allocator pressure.
type Pool struct {
	k, unitSize int
	mu          sync.Mutex
	free        []*Buffer
	allocated   int
}

// NewPool builds a pool producing k x unitSize buffers.
func NewPool(k, unitSize int) (*Pool, error) {
	if k <= 0 || unitSize <= 0 {
		return nil, fmt.Errorf("stripe: invalid pool geometry k=%d unit=%d", k, unitSize)
	}
	return &Pool{k: k, unitSize: unitSize}, nil
}

// K returns the number of units in each buffer the pool produces.
func (p *Pool) K() int { return p.k }

// UnitSize returns the unit size of the pool's buffers in bytes.
func (p *Pool) UnitSize() int { return p.unitSize }

// Get returns a reset buffer, reusing a released one when available.
func (p *Pool) Get() (*Buffer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		b.Reset()
		return b, nil
	}
	p.allocated++
	return NewBuffer(p.k, p.unitSize)
}

// Put releases a buffer back to the pool. Buffers of foreign geometry are
// rejected so a mixed-up caller fails loudly instead of corrupting stripes.
func (p *Pool) Put(b *Buffer) error {
	if b.k != p.k || b.unitSize != p.unitSize {
		return fmt.Errorf("stripe: buffer %dx%d returned to %dx%d pool", b.k, b.unitSize, p.k, p.unitSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, b)
	return nil
}

// Allocated returns how many distinct buffers the pool has created.
func (p *Pool) Allocated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated
}
