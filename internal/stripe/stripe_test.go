package stripe

import (
	"bytes"
	"testing"
)

func TestBufferLifecycle(t *testing.T) {
	b, err := NewBuffer(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 3 || b.UnitSize() != 16 {
		t.Error("accessors wrong")
	}
	if b.Complete() {
		t.Error("fresh buffer reports complete")
	}
	if _, err := b.Bytes(); err == nil {
		t.Error("incomplete Bytes accepted")
	}
	if got := b.Missing(); len(got) != 3 {
		t.Errorf("Missing=%v", got)
	}

	chunk := func(fill byte) []byte {
		c := make([]byte, 16)
		for i := range c {
			c[i] = fill
		}
		return c
	}
	if err := b.Put(1, chunk(0xBB)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(1, chunk(0xBB)); err == nil {
		t.Error("double fill accepted")
	}
	if err := b.Put(3, chunk(1)); err == nil {
		t.Error("out of range accepted")
	}
	if err := b.Put(0, chunk(1)[:5]); err == nil {
		t.Error("short chunk accepted")
	}
	if err := b.Put(0, chunk(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(2, chunk(0xCC)); err != nil {
		t.Fatal(err)
	}
	if !b.Complete() || b.Missing() != nil {
		t.Error("buffer should be complete")
	}
	data, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xAA || data[16] != 0xBB || data[32] != 0xCC {
		t.Error("unit ordering wrong in contiguous buffer")
	}
	u, err := b.Unit(1)
	if err != nil || !bytes.Equal(u, chunk(0xBB)) {
		t.Error("Unit(1) wrong")
	}
	if _, err := b.Unit(9); err == nil {
		t.Error("Unit out of range accepted")
	}

	b.Reset()
	if b.Complete() {
		t.Error("reset buffer reports complete")
	}
	if err := b.Put(1, chunk(2)); err != nil {
		t.Error("reset slot not reusable")
	}
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(0, 16); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBuffer(3, 0); err == nil {
		t.Error("unit=0 accepted")
	}
}

func TestPoolReuse(t *testing.T) {
	p, err := NewPool(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.Put(0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(b1); err != nil {
		t.Fatal(err)
	}
	b2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Error("pool did not reuse the released buffer")
	}
	if b2.Complete() || len(b2.Missing()) != 2 {
		t.Error("reused buffer was not reset")
	}
	if p.Allocated() != 1 {
		t.Errorf("Allocated=%d want 1", p.Allocated())
	}
	if _, err := p.Get(); err != nil {
		t.Fatal(err)
	}
	if p.Allocated() != 2 {
		t.Errorf("Allocated=%d want 2", p.Allocated())
	}

	foreign, _ := NewBuffer(3, 8)
	if err := p.Put(foreign); err == nil {
		t.Error("foreign buffer accepted")
	}
	if _, err := NewPool(0, 8); err == nil {
		t.Error("invalid pool accepted")
	}
}
