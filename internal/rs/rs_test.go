package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gemmec/internal/gf"
)

func fillRand(rng *rand.Rand, shards [][]byte, k int) {
	for i := 0; i < k; i++ {
		rng.Read(shards[i])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, ConstructionCauchy); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(200, 100, ConstructionCauchy); err == nil {
		t.Error("k+r > 256 accepted")
	}
	if _, err := New(4, 2, Construction(99)); err == nil {
		t.Error("unknown construction accepted")
	}
	c, err := New(10, 4, ConstructionCauchy)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 10 || c.R() != 4 {
		t.Error("K/R wrong")
	}
}

func TestEncodeMatchesFieldArithmetic(t *testing.T) {
	// First-principles check: parity byte = sum coding[ri][ki] * data[ki][b].
	f := gf.MustField(8)
	for _, cons := range []Construction{ConstructionCauchy, ConstructionCauchyGood, ConstructionVandermonde} {
		c, err := New(4, 2, cons)
		if err != nil {
			t.Fatal(err)
		}
		shards := c.AllocShards(64)
		rng := rand.New(rand.NewSource(int64(cons)))
		fillRand(rng, shards, 4)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		coding := c.CodingMatrix()
		for ri := 0; ri < 2; ri++ {
			for b := 0; b < 64; b++ {
				var want uint32
				for ki := 0; ki < 4; ki++ {
					want ^= f.Mul(coding.At(ri, ki), uint32(shards[ki][b]))
				}
				if shards[4+ri][b] != byte(want) {
					t.Fatalf("cons=%d parity[%d][%d] mismatch", cons, ri, b)
				}
			}
		}
	}
}

func TestRoundTripAllErasurePatterns(t *testing.T) {
	// For a small code, exhaustively erase every subset of size <= r and
	// verify reconstruction.
	k, r := 4, 2
	c, err := New(k, r, ConstructionCauchy)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	orig := c.AllocShards(96)
	fillRand(rng, orig, k)
	if err := c.Encode(orig); err != nil {
		t.Fatal(err)
	}

	n := k + r
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				erased++
			}
		}
		if erased > r {
			continue
		}
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask>>i&1 == 0 {
				shards[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %06b: %v", mask, err)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("mask %06b: shard %d wrong after reconstruct", mask, i)
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	k, r := 4, 2
	c, _ := New(k, r, ConstructionCauchy)
	shards := c.AllocShards(32)
	rng := rand.New(rand.NewSource(1))
	fillRand(rng, shards, k)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Errorf("err=%v want ErrTooFewShards", err)
	}
}

func TestVerify(t *testing.T) {
	c, _ := New(5, 3, ConstructionVandermonde)
	shards := c.AllocShards(40)
	rng := rand.New(rand.NewSource(2))
	fillRand(rng, shards, 5)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("fresh encode should verify (ok=%v err=%v)", ok, err)
	}
	shards[6][7] ^= 1
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("corruption should fail verification (ok=%v err=%v)", ok, err)
	}
}

func TestShardValidation(t *testing.T) {
	c, _ := New(3, 2, ConstructionCauchy)
	if err := c.Encode(make([][]byte, 4)); err == nil {
		t.Error("wrong shard count accepted")
	}
	shards := c.AllocShards(16)
	shards[1] = shards[1][:8]
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Errorf("mismatched sizes: err=%v", err)
	}
	shards = c.AllocShards(16)
	shards[2] = nil
	if err := c.Encode(shards); err == nil {
		t.Error("nil shard accepted by Encode")
	}
	shards = c.AllocShards(16)
	shards[0] = []byte{}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Errorf("empty shard: err=%v", err)
	}
	all := make([][]byte, 5)
	if err := c.Reconstruct(all); !errors.Is(err, ErrShardSize) {
		t.Errorf("all-nil: err=%v", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c, _ := New(3, 2, ConstructionCauchy)
	shards := c.AllocShards(16)
	rng := rand.New(rand.NewSource(3))
	fillRand(rng, shards, 3)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]byte, len(shards))
	for i := range shards {
		snapshot[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], snapshot[i]) {
			t.Fatal("Reconstruct with no erasures modified shards")
		}
	}
}

func TestConstructionsDiffer(t *testing.T) {
	// Vandermonde and Cauchy coding matrices should generally differ, so the
	// constructions are actually distinct code paths.
	a, _ := New(4, 2, ConstructionCauchy)
	b, _ := New(4, 2, ConstructionVandermonde)
	if a.CodingMatrix().Equal(b.CodingMatrix()) {
		t.Error("expected different coding matrices")
	}
	// But generator copies must be defensive.
	g := a.Generator()
	g.Set(0, 0, 99)
	if a.Generator().At(0, 0) == 99 {
		t.Error("Generator() must return a copy")
	}
}
