// Package rs implements a deliberately simple, byte-at-a-time Reed-Solomon
// coder over GF(2^8). It exists as the repository's correctness oracle: the
// optimized coders (the gemmec engine, the isal-, uezato- and
// jerasure-style baselines) are all property-tested against this package,
// and this package is itself tested against first-principles field
// arithmetic. Nothing here is optimized, on purpose.
package rs

import (
	"errors"
	"fmt"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

// Construction selects how the coding matrix is built.
type Construction int

const (
	// ConstructionCauchy uses a Cauchy coding matrix (default; matches the
	// bitmatrix coders so parities are byte-identical across libraries).
	ConstructionCauchy Construction = iota
	// ConstructionCauchyGood uses Jerasure's normalized Cauchy matrix with
	// fewer ones in its bitmatrix expansion.
	ConstructionCauchyGood
	// ConstructionVandermonde uses the systematic Vandermonde generator
	// (ISA-L's construction).
	ConstructionVandermonde
)

// ErrTooFewShards is returned when fewer than k shards survive.
var ErrTooFewShards = errors.New("rs: fewer than k shards available")

// ErrShardSize is returned when shards have inconsistent or zero sizes.
var ErrShardSize = errors.New("rs: shard size mismatch")

// Coder is a systematic (k+r, k) Reed-Solomon coder over GF(2^8).
type Coder struct {
	k, r   int
	f      *gf.Field
	coding *matrix.Matrix // r x k
	gen    *matrix.Matrix // (k+r) x k systematic generator
}

// New builds a coder for k data and r parity shards using the given
// construction.
func New(k, r int, c Construction) (*Coder, error) {
	f := gf.MustField(8)
	var coding *matrix.Matrix
	var err error
	switch c {
	case ConstructionCauchy:
		coding, err = matrix.Cauchy(f, r, k)
	case ConstructionCauchyGood:
		coding, err = matrix.CauchyGood(f, r, k)
	case ConstructionVandermonde:
		var gen *matrix.Matrix
		gen, err = matrix.VandermondeRS(f, k, r)
		if err == nil {
			coding, err = matrix.CodingRows(gen, k)
		}
	default:
		return nil, fmt.Errorf("rs: unknown construction %d", c)
	}
	if err != nil {
		return nil, err
	}
	gen, err := matrix.SystematicGenerator(coding)
	if err != nil {
		return nil, err
	}
	return &Coder{k: k, r: r, f: f, coding: coding, gen: gen}, nil
}

// K returns the number of data shards.
func (c *Coder) K() int { return c.k }

// R returns the number of parity shards.
func (c *Coder) R() int { return c.r }

// CodingMatrix returns a copy of the r x k coding matrix, so other coders
// can be built over the identical generator for byte-level equivalence
// testing.
func (c *Coder) CodingMatrix() *matrix.Matrix { return c.coding.Clone() }

// Generator returns a copy of the full (k+r) x k systematic generator.
func (c *Coder) Generator() *matrix.Matrix { return c.gen.Clone() }

func (c *Coder) checkShards(shards [][]byte, allowNil bool) (int, error) {
	if len(shards) != c.k+c.r {
		return 0, fmt.Errorf("rs: have %d shards, want k+r=%d", len(shards), c.k+c.r)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("rs: shard %d is nil", i)
			}
			continue
		}
		if len(s) == 0 {
			return 0, fmt.Errorf("rs: shard %d is empty: %w", i, ErrShardSize)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("rs: shard %d has %d bytes, others have %d: %w", i, len(s), size, ErrShardSize)
		}
	}
	if size == -1 {
		return 0, fmt.Errorf("rs: all shards nil: %w", ErrShardSize)
	}
	return size, nil
}

// Encode fills the r parity shards (shards[k:]) from the k data shards
// (shards[:k]). All k+r shards must be allocated with equal sizes.
func (c *Coder) Encode(shards [][]byte) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	for ri := 0; ri < c.r; ri++ {
		out := shards[c.k+ri]
		for b := 0; b < size; b++ {
			var acc uint32
			for ki := 0; ki < c.k; ki++ {
				acc ^= c.f.Mul(c.coding.At(ri, ki), uint32(shards[ki][b]))
			}
			out[b] = byte(acc)
		}
	}
	return nil
}

// Verify recomputes the parity shards and reports whether they match.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	for ri := 0; ri < c.r; ri++ {
		for b := 0; b < size; b++ {
			var acc uint32
			for ki := 0; ki < c.k; ki++ {
				acc ^= c.f.Mul(c.coding.At(ri, ki), uint32(shards[ki][b]))
			}
			if byte(acc) != shards[c.k+ri][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds every nil shard in place. Non-nil shards are taken
// as intact. At least k shards must be non-nil. Reconstructed shards are
// freshly allocated.
func (c *Coder) Reconstruct(shards [][]byte) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	var survivors []int
	var lost []int
	for i, s := range shards {
		if s != nil {
			survivors = append(survivors, i)
		} else {
			lost = append(lost, i)
		}
	}
	if len(lost) == 0 {
		return nil
	}
	if len(survivors) < c.k {
		return fmt.Errorf("rs: %d survivors for k=%d: %w", len(survivors), c.k, ErrTooFewShards)
	}
	survivors = survivors[:c.k]

	dm, err := matrix.DecodeMatrix(c.gen, c.k, survivors)
	if err != nil {
		return fmt.Errorf("rs: decode matrix: %w", err)
	}
	// Rows that regenerate the lost shards directly: lostRow = genRow(lost) * dm.
	lostRows, err := c.gen.SelectRows(lost)
	if err != nil {
		return err
	}
	rec, err := lostRows.Mul(dm)
	if err != nil {
		return err
	}
	for li, shard := range lost {
		out := make([]byte, size)
		for b := 0; b < size; b++ {
			var acc uint32
			for si, s := range survivors {
				acc ^= c.f.Mul(rec.At(li, si), uint32(shards[s][b]))
			}
			out[b] = byte(acc)
		}
		shards[shard] = out
	}
	return nil
}

// AllocShards returns k+r zeroed shards of the given size, a convenience
// for tests and examples.
func (c *Coder) AllocShards(size int) [][]byte {
	shards := make([][]byte, c.k+c.r)
	for i := range shards {
		shards[i] = make([]byte, size)
	}
	return shards
}
