package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEncodeLinearityQuick property-checks the linearity the incremental
// update feature depends on: encode(a xor b) = encode(a) xor encode(b).
func TestEncodeLinearityQuick(t *testing.T) {
	c, err := New(4, 3, ConstructionCauchy)
	if err != nil {
		t.Fatal(err)
	}
	size := 24
	prop := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		a := c.AllocShards(size)
		b := c.AllocShards(size)
		x := c.AllocShards(size)
		for i := 0; i < 4; i++ {
			rngA.Read(a[i])
			rngB.Read(b[i])
			for j := 0; j < size; j++ {
				x[i][j] = a[i][j] ^ b[i][j]
			}
		}
		for _, s := range [][][]byte{a, b, x} {
			if err := c.Encode(s); err != nil {
				return false
			}
		}
		for p := 4; p < 7; p++ {
			for j := 0; j < size; j++ {
				if x[p][j] != a[p][j]^b[p][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSystematicQuick: data shards pass through encoding untouched, for
// random contents — the property "systematic" names.
func TestSystematicQuick(t *testing.T) {
	c, err := New(5, 2, ConstructionVandermonde)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := c.AllocShards(32)
		before := make([][]byte, 5)
		for i := 0; i < 5; i++ {
			rng.Read(shards[i])
			before[i] = append([]byte(nil), shards[i]...)
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			if !bytes.Equal(shards[i], before[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScalarMultipleQuick: scaling all data by a constant scales parities
// by the same constant (GF-linearity in the other argument).
func TestScalarMultipleQuick(t *testing.T) {
	c, err := New(3, 2, ConstructionCauchy)
	if err != nil {
		t.Fatal(err)
	}
	f := c.CodingMatrix().Field()
	prop := func(seed int64, scalar uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := c.AllocShards(16)
		b := c.AllocShards(16)
		for i := 0; i < 3; i++ {
			rng.Read(a[i])
			for j := range a[i] {
				b[i][j] = byte(f.Mul(uint32(scalar), uint32(a[i][j])))
			}
		}
		if err := c.Encode(a); err != nil {
			return false
		}
		if err := c.Encode(b); err != nil {
			return false
		}
		for p := 3; p < 5; p++ {
			for j := range a[p] {
				if b[p][j] != byte(f.Mul(uint32(scalar), uint32(a[p][j]))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
