package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFIFOWithinStream: one stream's tasks start in submission order even
// with several workers racing for them.
func TestFIFOWithinStream(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	q := s.NewQueue()
	var mu sync.Mutex
	var started []int
	for i := 0; i < 100; i++ {
		q.Submit(func() {
			mu.Lock()
			started = append(started, i)
			mu.Unlock()
		})
	}
	q.Close()
	for i, v := range started {
		if v != i {
			t.Fatalf("task %d started at position %d; want submission order", v, i)
		}
	}
}

// TestFairnessNoStarvation is the scheduler-level form of "N slow GETs
// cannot starve a PUT": four queues pre-load a huge backlog of slow tasks,
// then a fifth queue submits a small burst. With FIFO-across-everything the
// burst would run after the entire backlog; with round-robin dispatch it
// must finish after roughly (burst × streams) task slots.
func TestFairnessNoStarvation(t *testing.T) {
	const (
		slowStreams = 4
		backlogEach = 500
		putTasks    = 10
	)
	var executed atomic.Int64 // total tasks run before the PUT completed

	s := New(Config{Workers: 1}) // single worker makes the schedule exact
	defer s.Close()

	slow := make([]*Queue, slowStreams)
	gate := make(chan struct{}) // holds the worker until all queues are loaded
	first := s.NewQueue()
	first.Submit(func() { <-gate })
	for i := range slow {
		slow[i] = s.NewQueue()
		for j := 0; j < backlogEach; j++ {
			slow[i].Submit(func() { executed.Add(1) })
		}
	}
	put := s.NewQueue()
	var putDone atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	for j := 0; j < putTasks; j++ {
		last := j == putTasks-1
		put.Submit(func() {
			executed.Add(1)
			if last {
				putDone.Store(executed.Load())
				wg.Done()
			}
		})
	}
	close(gate)
	wg.Wait()

	// Round-robin serves each of the 5 loaded queues one task per pass, so
	// the PUT's 10th task runs within ~10 passes ≈ 50-60 tasks. Give slack
	// but stay far below the 2000-task backlog a FIFO would impose.
	if n := putDone.Load(); n > int64((slowStreams+1)*putTasks*2) {
		t.Fatalf("PUT finished after %d tasks executed; fair dispatch should bound it near %d",
			n, (slowStreams+1)*putTasks)
	}
	for _, q := range slow {
		q.Close()
	}
	put.Close()
	first.Close()
}

// TestAdmissionControl: slots bound admitted streams, excess Admits fail
// with ErrOverloaded and count as shed, Release reopens the door.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 1, MaxStreams: 2})
	defer s.Close()
	if err := s.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(); err != nil {
		t.Fatal(err)
	}
	err := s.Admit()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Admit: got %v, want ErrOverloaded", err)
	}
	if got := s.Shed(); got != 1 {
		t.Fatalf("Shed() = %d, want 1", got)
	}
	if got := s.Admitted(); got != 2 {
		t.Fatalf("Admitted() = %d, want 2", got)
	}
	s.Release()
	if err := s.Admit(); err != nil {
		t.Fatalf("Admit after Release: %v", err)
	}
	s.Release()
	s.Release()
}

// TestQueueDepthAccounting: queued reflects submitted-not-yet-started
// tasks and drains back to zero.
func TestQueueDepthAccounting(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	q := s.NewQueue()
	q.Submit(func() { <-gate }) // occupies the only worker
	for i := 0; i < 9; i++ {
		q.Submit(func() {})
	}
	// The first task may or may not have been dequeued yet; the other 9
	// must still be queued.
	if d := s.QueueDepth(); d < 9 || d > 10 {
		t.Fatalf("QueueDepth() = %d, want 9 or 10", d)
	}
	close(gate)
	q.Close()
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth() after drain = %d, want 0", d)
	}
}

// TestWaitBlocksUntilDone: Close returns only after every task ran.
func TestWaitBlocksUntilDone(t *testing.T) {
	s := New(Config{Workers: 3})
	defer s.Close()
	var ran atomic.Int64
	q := s.NewQueue()
	for i := 0; i < 200; i++ {
		q.Submit(func() { ran.Add(1) })
	}
	q.Close()
	if got := ran.Load(); got != 200 {
		t.Fatalf("after Close, %d of 200 tasks ran", got)
	}
}

// TestOnWaitHook: the wait hook fires once per task with a sane duration.
func TestOnWaitHook(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{Workers: 2, OnWait: func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative wait %v", d)
		}
		calls.Add(1)
	}})
	q := s.NewQueue()
	for i := 0; i < 50; i++ {
		q.Submit(func() {})
	}
	q.Close()
	s.Close()
	if got := calls.Load(); got != 50 {
		t.Fatalf("OnWait fired %d times, want 50", got)
	}
}

// TestSubmitAfterSchedulerClose: late submissions run synchronously
// instead of hanging the caller.
func TestSubmitAfterSchedulerClose(t *testing.T) {
	s := New(Config{Workers: 1})
	q := s.NewQueue()
	s.Close()
	ran := false
	q.Submit(func() { ran = true })
	if !ran {
		t.Fatal("post-Close Submit did not run synchronously")
	}
	q.Close()
}

// TestConcurrentStreams: many goroutines each run a full
// queue-submit-close cycle at once; every task must run exactly once.
// Primarily a -race target.
func TestConcurrentStreams(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	const streams, tasks = 32, 64
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := s.NewQueue()
			var local atomic.Int64
			for j := 0; j < tasks; j++ {
				q.Submit(func() {
					local.Add(1)
					total.Add(1)
				})
			}
			q.Close()
			if got := local.Load(); got != tasks {
				t.Errorf("stream ran %d of %d tasks", got, tasks)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != streams*tasks {
		t.Fatalf("ran %d tasks, want %d", got, streams*tasks)
	}
}
