// Package sched is the server-wide encode/decode scheduler: one bounded
// pool of kernel workers that every streaming request submits per-stripe
// work to, instead of each request spinning up (and tearing down) its own
// worker goroutine set. The design borrows the shape of an ML serving
// stack — a fixed executor pool fed by per-request queues — because that
// is where the paper's thesis points: throughput at high concurrency
// comes from amortizing setup across many small operations, not from
// giving every operation its own machinery.
//
// Three properties matter and each is load-bearing:
//
//   - Bounded workers. The pool spawns Config.Workers goroutines once, at
//     construction. A thousand concurrent requests share those workers;
//     goroutine count no longer scales with (requests × per-request
//     workers), and the kernel working set stays cache-resident.
//
//   - Fair dispatch. Each stream (one encode or decode run) owns a FIFO
//     queue; workers serve the queues round-robin, one task per visit. A
//     stream with a thousand queued stripes cannot starve a stream with
//     one: every active stream receives ~1/Nth of the pool regardless of
//     backlog depth. Within a stream, tasks run in submission order
//     (started in order; they may complete out of order across workers,
//     which the pipeline's in-order writer already absorbs).
//
//   - Admission control. Admit reserves one of a bounded number of
//     stream slots; past the bound it fails fast with ErrOverloaded so
//     the serving layer can shed load (429 + Retry-After) instead of
//     queueing unboundedly and timing everyone out. Queue depth, admitted
//     streams and per-task wait are observable via hooks and accessors.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// ErrOverloaded is returned by Admit when every admission slot is taken.
// The serving layer maps it to HTTP 429 with a Retry-After hint.
var ErrOverloaded = errors.New("sched: scheduler at admission limit")

// Config sizes a scheduler.
type Config struct {
	// Workers is the number of pool goroutines executing stripe tasks.
	// 0 selects GOMAXPROCS.
	Workers int
	// MaxStreams bounds how many streams may be admitted concurrently
	// (Admit slots). 0 disables admission control: Admit always succeeds.
	// Queues created without Admit are not counted against the bound —
	// admission is the serving layer's gate, not the pipeline's.
	MaxStreams int
	// OnWait, when non-nil, observes each task's scheduler wait: the time
	// from Submit to the moment a worker starts running it. The serving
	// layer points this at a histogram.
	OnWait func(time.Duration)
}

// task is one unit of queued work plus its enqueue time for wait
// accounting.
type task struct {
	fn  func()
	enq time.Time
}

// Queue is one stream's FIFO of stripe tasks. Create with NewQueue,
// feed with Submit, and Close when the stream is done — Close blocks
// until every submitted task has finished running, which is what makes
// it safe for the stream to release its ring buffers afterwards.
type Queue struct {
	s *Scheduler

	// Guarded by s.mu. tasks is a head-indexed FIFO reused across
	// drain/refill cycles so steady-state submission does not allocate.
	tasks   []task
	head    int
	pending int // submitted tasks not yet finished running
	inRing  bool
	closed  bool
	done    *sync.Cond // signaled when pending drops to 0
}

// Scheduler is the shared pool. Construct with New; Close drains and
// stops the workers.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	work     *sync.Cond // signaled when a task is queued or on Close
	ring     []*Queue   // queues holding runnable tasks, served round-robin
	next     int        // ring cursor
	queued   int        // tasks queued across all streams
	admitted int        // admission slots in use
	shed     int64      // Admit calls refused
	lastBusy time.Time  // last moment work was queued, admitted or finished
	closed   bool

	wg sync.WaitGroup
}

// New builds the scheduler and starts its worker pool.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{cfg: cfg, lastBusy: time.Now()}
	s.work = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// MaxStreams returns the admission bound (0 = unlimited).
func (s *Scheduler) MaxStreams() int { return s.cfg.MaxStreams }

// QueueDepth returns the number of tasks currently queued (not yet
// started) across all streams — the quantity the admission bound protects
// and the /metricsz gauge reports.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Admitted returns the admission slots currently held.
func (s *Scheduler) Admitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted
}

// Shed returns how many Admit calls have been refused since construction.
func (s *Scheduler) Shed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// IdleFor reports how long the scheduler has been idle: zero while any
// task is queued or any admission slot is held, otherwise the time since
// the last task finished (or the last admission was released). The
// serving-loop autotuner gates its background trials on this — tuning
// only runs in windows where it cannot steal cycles from live traffic.
func (s *Scheduler) IdleFor() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued > 0 || s.admitted > 0 {
		return 0
	}
	return time.Since(s.lastBusy)
}

// Admit reserves one admission slot, failing fast with ErrOverloaded when
// all MaxStreams slots are taken. Pair every successful Admit with exactly
// one Release. With MaxStreams 0 it always succeeds.
func (s *Scheduler) Admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxStreams > 0 && s.admitted >= s.cfg.MaxStreams {
		s.shed++
		return fmt.Errorf("%w (%d streams admitted, %d tasks queued)",
			ErrOverloaded, s.admitted, s.queued)
	}
	s.admitted++
	s.lastBusy = time.Now()
	return nil
}

// Release returns an admission slot taken by Admit.
func (s *Scheduler) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.admitted > 0 {
		s.admitted--
	}
	s.lastBusy = time.Now()
}

// NewQueue registers a new stream queue on the pool.
func (s *Scheduler) NewQueue() *Queue {
	q := &Queue{s: s}
	q.done = sync.NewCond(&s.mu)
	return q
}

// Submit enqueues one task for the pool. Tasks of one queue start in
// submission order; tasks of different queues interleave fairly. After
// the scheduler has been closed, the task runs synchronously on the
// caller's goroutine so late submissions during shutdown cannot hang.
func (q *Queue) Submit(fn func()) {
	s := q.s
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		panic("sched: Submit on closed Queue")
	}
	if s.closed {
		q.pending++
		s.mu.Unlock()
		fn()
		s.mu.Lock()
		q.pending--
		if q.pending == 0 {
			q.done.Broadcast()
		}
		s.mu.Unlock()
		return
	}
	now := time.Now()
	if q.head > 0 && len(q.tasks) == cap(q.tasks) {
		// Compact the consumed head instead of growing: a long stream that
		// never fully drains its queue would otherwise reallocate the
		// backing array O(log stripes) times. Backlog is bounded by the
		// pipeline's ring depth, so after compaction the append fits and
		// steady-state submission is allocation-free.
		n := copy(q.tasks, q.tasks[q.head:])
		q.tasks = q.tasks[:n]
		q.head = 0
	}
	q.tasks = append(q.tasks, task{fn: fn, enq: now})
	q.pending++
	s.queued++
	s.lastBusy = now
	if !q.inRing {
		s.ring = append(s.ring, q)
		q.inRing = true
	}
	s.mu.Unlock()
	s.work.Signal()
}

// Wait blocks until every task submitted so far has finished running.
func (q *Queue) Wait() {
	s := q.s
	s.mu.Lock()
	for q.pending > 0 {
		q.done.Wait()
	}
	s.mu.Unlock()
}

// Close waits for all submitted tasks to finish and retires the queue.
// It is safe to call once; Submit after Close panics.
func (q *Queue) Close() {
	q.Wait()
	q.s.mu.Lock()
	q.closed = true
	q.s.mu.Unlock()
}

// Close drains every queued task and stops the workers. Safe to call
// once; queues may still Wait/Close afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.work.Broadcast()
	s.wg.Wait()
}

// pop selects the next runnable task round-robin across stream queues.
// Caller holds s.mu; returns ok=false only when the scheduler is closed
// and fully drained.
func (s *Scheduler) pop() (q *Queue, t task, ok bool) {
	for {
		for !s.closed && len(s.ring) == 0 {
			s.work.Wait()
		}
		if len(s.ring) == 0 {
			return nil, task{}, false // closed and drained
		}
		if s.next >= len(s.ring) {
			s.next = 0
		}
		q = s.ring[s.next]
		t = q.tasks[q.head]
		q.tasks[q.head] = task{} // drop the closure reference
		q.head++
		if q.head == len(q.tasks) {
			// Queue drained: recycle its backing array and leave the ring.
			q.tasks = q.tasks[:0]
			q.head = 0
			q.inRing = false
			s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
			// s.next now points at the following queue; no advance needed.
		} else {
			s.next++
		}
		s.queued--
		return q, t, true
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	// The label is applied once per worker goroutine, so CPU profiles
	// attribute all pooled encode/decode kernel time to the scheduler
	// rather than smearing it across whichever requests happened to
	// enqueue the stripes.
	pprof.Do(context.Background(), pprof.Labels("op", "sched", "stage", "worker"),
		func(context.Context) { s.run() })
}

func (s *Scheduler) run() {
	s.mu.Lock()
	for {
		q, t, ok := s.pop()
		if !ok {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if s.cfg.OnWait != nil {
			s.cfg.OnWait(time.Since(t.enq))
		}
		t.fn()
		s.mu.Lock()
		q.pending--
		s.lastBusy = time.Now()
		if q.pending == 0 {
			q.done.Broadcast()
		}
	}
}
