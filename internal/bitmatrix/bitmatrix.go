// Package bitmatrix implements the "bitmatrix" transformation of erasure
// codes (Blömer et al. 1995; Plank et al. 2013): an erasure code over
// GF(2^w) is converted into an equivalent code over GF(2), so that all
// arithmetic becomes bitwise AND and XOR. Each generator element becomes a
// w x w binary matrix and each data unit is split into w packets
// ("planes"); encoding is then the binary GEMM of Listing 2 in the paper:
//
//	for i in rw: for j in d: for k in kw: C[i,j] ^= A[i,k] & B[k,j]
//
// This package provides the binary matrices, the conversion from GF
// matrices, the unit/plane layout, and a deliberately simple byte-wise
// reference encoder that serves as the correctness oracle for every
// optimized kernel in the repository.
package bitmatrix

import (
	"fmt"
	"math/bits"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

// BitMatrix is a dense binary matrix with rows packed into uint64 words.
type BitMatrix struct {
	rows, cols int
	wpr        int // words per row
	bits       []uint64
}

// New returns a zero rows x cols binary matrix.
func New(rows, cols int) *BitMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("bitmatrix: invalid shape %dx%d", rows, cols))
	}
	wpr := (cols + 63) / 64
	return &BitMatrix{rows: rows, cols: cols, wpr: wpr, bits: make([]uint64, rows*wpr)}
}

// Rows returns the number of rows.
func (b *BitMatrix) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *BitMatrix) Cols() int { return b.cols }

// At reports whether bit (i, j) is set.
func (b *BitMatrix) At(i, j int) bool {
	b.check(i, j)
	return b.bits[i*b.wpr+j/64]>>(uint(j)%64)&1 == 1
}

// Set assigns bit (i, j).
func (b *BitMatrix) Set(i, j int, v bool) {
	b.check(i, j)
	w := &b.bits[i*b.wpr+j/64]
	mask := uint64(1) << (uint(j) % 64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

func (b *BitMatrix) check(i, j int) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("bitmatrix: index (%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
}

// Ones returns the total number of set bits. For a bitmatrix erasure code
// this is proportional to the XOR work of naive encoding, which is why
// generator constructions that minimize ones (§2.1 of the paper) matter.
func (b *BitMatrix) Ones() int {
	n := 0
	for _, w := range b.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// RowOnes returns the sorted column indices of the set bits in row i.
func (b *BitMatrix) RowOnes(i int) []int {
	b.check(i, 0)
	var idx []int
	for wi := 0; wi < b.wpr; wi++ {
		w := b.bits[i*b.wpr+wi]
		for w != 0 {
			t := bits.TrailingZeros64(w)
			j := wi*64 + t
			if j < b.cols {
				idx = append(idx, j)
			}
			w &= w - 1
		}
	}
	return idx
}

// Clone returns a deep copy.
func (b *BitMatrix) Clone() *BitMatrix {
	c := New(b.rows, b.cols)
	copy(c.bits, b.bits)
	return c
}

// Equal reports whether two bitmatrices have identical shape and bits.
func (b *BitMatrix) Equal(o *BitMatrix) bool {
	if b.rows != o.rows || b.cols != o.cols {
		return false
	}
	for i := range b.bits {
		if b.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Mul returns the binary matrix product b * o over GF(2).
func (b *BitMatrix) Mul(o *BitMatrix) (*BitMatrix, error) {
	if b.cols != o.rows {
		return nil, fmt.Errorf("bitmatrix: cannot multiply %dx%d by %dx%d", b.rows, b.cols, o.rows, o.cols)
	}
	p := New(b.rows, o.cols)
	for i := 0; i < b.rows; i++ {
		for _, k := range b.RowOnes(i) {
			// p.row(i) ^= o.row(k)
			pi := p.bits[i*p.wpr : (i+1)*p.wpr]
			ok := o.bits[k*o.wpr : (k+1)*o.wpr]
			for wi := range pi {
				pi[wi] ^= ok[wi]
			}
		}
	}
	return p, nil
}

// Invert returns the inverse of a square binary matrix over GF(2), or
// matrix.ErrSingular if none exists. It exists mainly so tests can verify
// that inversion and bitmatrix conversion commute.
func (b *BitMatrix) Invert() (*BitMatrix, error) {
	if b.rows != b.cols {
		return nil, fmt.Errorf("bitmatrix: cannot invert non-square %dx%d", b.rows, b.cols)
	}
	n := b.rows
	a := b.Clone()
	inv := IdentityBits(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, matrix.ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		for r := 0; r < n; r++ {
			if r != col && a.At(r, col) {
				a.xorRow(r, col)
				inv.xorRow(r, col)
			}
		}
	}
	return inv, nil
}

// IdentityBits returns the n x n binary identity matrix.
func IdentityBits(n int) *BitMatrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

func (b *BitMatrix) swapRows(i, j int) {
	ri := b.bits[i*b.wpr : (i+1)*b.wpr]
	rj := b.bits[j*b.wpr : (j+1)*b.wpr]
	for w := range ri {
		ri[w], rj[w] = rj[w], ri[w]
	}
}

func (b *BitMatrix) xorRow(dst, src int) {
	rd := b.bits[dst*b.wpr : (dst+1)*b.wpr]
	rs := b.bits[src*b.wpr : (src+1)*b.wpr]
	for w := range rd {
		rd[w] ^= rs[w]
	}
}

// String renders the matrix as rows of 0/1 characters.
func (b *BitMatrix) String() string {
	out := make([]byte, 0, b.rows*(b.cols+1))
	for i := 0; i < b.rows; i++ {
		for j := 0; j < b.cols; j++ {
			if b.At(i, j) {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}

// ElementMatrix returns the w x w binary matrix representing multiplication
// by field element e: column j holds the bits of e * x^j, least-significant
// bit in row 0. Multiplying this matrix by the bit-vector of an element v
// yields the bits of e*v — the core identity behind the bitmatrix scheme.
func ElementMatrix(f *gf.Field, e uint32) *BitMatrix {
	w := int(f.W())
	m := New(w, w)
	for j := 0; j < w; j++ {
		col := f.Mul(e, uint32(1)<<uint(j))
		for i := 0; i < w; i++ {
			if col>>uint(i)&1 == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// ElementOnes returns the number of ones in ElementMatrix(f, e) without
// materializing it — the per-element cost metric generator searches
// minimize.
func ElementOnes(f *gf.Field, e uint32) int {
	w := int(f.W())
	n := 0
	for j := 0; j < w; j++ {
		n += bits.OnesCount32(f.Mul(e, uint32(1)<<uint(j)))
	}
	return n
}

// CauchyBest returns the ones-minimized Cauchy coding matrix of
// matrix.CauchyBest, wired to this package's element weight function.
func CauchyBest(f *gf.Field, r, k, maxCand int) (*matrix.Matrix, error) {
	return matrix.CauchyBest(f, r, k, maxCand, ElementOnes)
}

// FromGF expands an R x K matrix over GF(2^w) into its (R*w) x (K*w)
// bitmatrix, replacing every element with its ElementMatrix block.
func FromGF(m *matrix.Matrix) *BitMatrix {
	f := m.Field()
	w := int(f.W())
	bm := New(m.Rows()*w, m.Cols()*w)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			blk := ElementMatrix(f, m.At(i, j))
			for bi := 0; bi < w; bi++ {
				for bj := 0; bj < w; bj++ {
					if blk.At(bi, bj) {
						bm.Set(i*w+bi, j*w+bj, true)
					}
				}
			}
		}
	}
	return bm
}
