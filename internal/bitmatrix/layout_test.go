package bitmatrix

import (
	"bytes"
	"math/rand"
	"testing"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(4, 2, 8, 1024); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	for _, bad := range []struct {
		k, r, w, unit int
	}{
		{0, 2, 8, 1024},
		{4, 0, 8, 1024},
		{4, 2, 0, 1024},
		{4, 2, 33, 1024},
		{4, 2, 8, 0},
		{4, 2, 8, 100},  // not a multiple of 8*w
		{4, 2, 8, 1028}, // not a multiple of 64
	} {
		if _, err := NewLayout(bad.k, bad.r, bad.w, bad.unit); err == nil {
			t.Errorf("layout %+v should be rejected", bad)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l, err := NewLayout(4, 2, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if l.PlaneSize != 128 {
		t.Errorf("PlaneSize=%d want 128", l.PlaneSize)
	}
	if l.DataLen() != 4096 || l.ParityLen() != 2048 {
		t.Error("buffer lengths wrong")
	}
	if l.DataPlanes() != 32 || l.ParityPlanes() != 16 {
		t.Error("plane counts wrong")
	}

	data := make([]byte, l.DataLen())
	for i := range data {
		data[i] = byte(i / 128) // each plane gets a distinct fill byte
	}
	// Plane 9 = unit 1, packet 1 = bytes [1*1024+128, +128) = fill 9.
	p := l.Plane(data, 9)
	if len(p) != 128 || p[0] != 9 || p[127] != 9 {
		t.Errorf("Plane(9) wrong: len=%d first=%d", len(p), p[0])
	}
	planes := l.Planes(data, 4)
	if len(planes) != 32 || planes[31][0] != 31 {
		t.Error("Planes slicing wrong")
	}
	up := l.UnitPlanes(data[1024:2048])
	if len(up) != 8 || up[0][0] != 8 || up[7][0] != 15 {
		t.Error("UnitPlanes slicing wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong unit length should panic")
			}
		}()
		l.UnitPlanes(data[:100])
	}()
}

func TestCheckBuffers(t *testing.T) {
	l, _ := NewLayout(2, 1, 4, 64)
	if err := l.CheckData(make([]byte, 128)); err != nil {
		t.Error(err)
	}
	if err := l.CheckData(make([]byte, 127)); err == nil {
		t.Error("short data accepted")
	}
	if err := l.CheckParity(make([]byte, 64)); err != nil {
		t.Error(err)
	}
	if err := l.CheckParity(make([]byte, 65)); err == nil {
		t.Error("long parity accepted")
	}
}

// TestEncodeReferenceMatchesFieldRS is the anchor correctness test of the
// whole repository: bitmatrix encoding over planes must produce exactly the
// same parity bytes as byte-wise Reed-Solomon over GF(2^w) — the
// equivalence the paper's entire premise rests on.
func TestEncodeReferenceMatchesFieldRS(t *testing.T) {
	for _, w := range []uint{4, 8} {
		f := gf.MustField(w)
		k, r := 4, 2
		unit := 8 * int(w) * 2 // two words per plane
		l, err := NewLayout(k, r, int(w), unit)
		if err != nil {
			t.Fatal(err)
		}
		coding, err := matrix.Cauchy(f, r, k)
		if err != nil {
			t.Fatal(err)
		}
		bm := FromGF(coding)

		rng := rand.New(rand.NewSource(int64(w)))
		data := make([]byte, l.DataLen())
		rng.Read(data)

		parity := make([]byte, l.ParityLen())
		if err := EncodeReference(bm, l, data, parity); err != nil {
			t.Fatal(err)
		}

		// Field-level oracle. The bitmatrix layout encodes "columns" that are
		// w-bit symbols gathered across planes: symbol s of unit u has bit p
		// at byte s of plane p... but bits within a byte are independent GF(2)
		// lanes. Check bit-by-bit: for every byte position b and bit t, the
		// symbol of unit u is the w-bit word formed from bit t of byte b of
		// each of u's planes, and parities must be the field combination.
		for b := 0; b < l.PlaneSize; b++ {
			for tbit := 0; tbit < 8; tbit++ {
				syms := make([]uint32, k)
				for u := 0; u < k; u++ {
					var v uint32
					for p := 0; p < int(w); p++ {
						bit := data[u*l.UnitSize+p*l.PlaneSize+b] >> uint(tbit) & 1
						v |= uint32(bit) << uint(p)
					}
					syms[u] = v
				}
				want, err := coding.MulVec(syms)
				if err != nil {
					t.Fatal(err)
				}
				for ri := 0; ri < r; ri++ {
					var got uint32
					for p := 0; p < int(w); p++ {
						bit := parity[ri*l.UnitSize+p*l.PlaneSize+b] >> uint(tbit) & 1
						got |= uint32(bit) << uint(p)
					}
					if got != want[ri] {
						t.Fatalf("w=%d byte %d bit %d parity %d: got %#x want %#x", w, b, tbit, ri, got, want[ri])
					}
				}
			}
		}
	}
}

func TestEncodeReferenceErrors(t *testing.T) {
	l, _ := NewLayout(2, 1, 4, 64)
	coding, _ := matrix.Cauchy(gf.MustField(4), 1, 2)
	bm := FromGF(coding)
	data := make([]byte, l.DataLen())
	parity := make([]byte, l.ParityLen())
	if err := EncodeReference(bm, l, data[:10], parity); err == nil {
		t.Error("short data accepted")
	}
	if err := EncodeReference(bm, l, data, parity[:10]); err == nil {
		t.Error("short parity accepted")
	}
	if err := EncodeReference(IdentityBits(3), l, data, parity); err == nil {
		t.Error("wrong matrix shape accepted")
	}
}

func TestApplyReferenceRoundTrip(t *testing.T) {
	// Encode with the full systematic generator, erase units, reconstruct
	// with the inverted bitmatrix, and compare.
	f := gf.MustField(8)
	k, r := 5, 3
	l, err := NewLayout(k, r, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	coding, _ := matrix.Cauchy(f, r, k)
	gen, _ := matrix.SystematicGenerator(coding)

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, l.DataLen())
	rng.Read(data)
	parity := make([]byte, l.ParityLen())
	if err := EncodeReference(FromGF(coding), l, data, parity); err != nil {
		t.Fatal(err)
	}

	// Lose data units 0 and 3 and parity 1; survivors: data 1,2,4, parity 0, 2.
	survivors := []int{1, 2, 4, k + 0, k + 2}
	dm, err := matrix.DecodeMatrix(gen, k, survivors)
	if err != nil {
		t.Fatal(err)
	}
	surv := make([]byte, k*l.UnitSize)
	for i, s := range survivors {
		var src []byte
		if s < k {
			src = data[s*l.UnitSize : (s+1)*l.UnitSize]
		} else {
			src = parity[(s-k)*l.UnitSize : (s-k+1)*l.UnitSize]
		}
		copy(surv[i*l.UnitSize:], src)
	}
	rec := make([]byte, k*l.UnitSize)
	if err := ApplyReference(FromGF(dm), l, surv, k, rec, k); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, data) {
		t.Fatal("reference decode did not reconstruct the data")
	}

	// Error paths.
	if err := ApplyReference(FromGF(dm), l, surv[:10], k, rec, k); err == nil {
		t.Error("short input accepted")
	}
	if err := ApplyReference(FromGF(dm), l, surv, k, rec[:10], k); err == nil {
		t.Error("short output accepted")
	}
	if err := ApplyReference(FromGF(dm), l, surv, k, rec, k+1); err == nil {
		t.Error("wrong unit count accepted")
	}
}
