package bitmatrix

import (
	"fmt"

	"gemmec/internal/ecerr"
)

// Layout describes how the units of a (k, r, w) bitmatrix code map onto
// byte buffers. Each unit of UnitSize bytes is split into w equal packets
// ("planes"); plane j of the data operand (j in [0, k*w)) is packet (j mod w)
// of unit (j div w). The GEMM's column dimension d is the plane size in
// bytes, which optimized kernels process as uint64 words — the paper's
// vectorization axis.
type Layout struct {
	K         int // data units
	R         int // parity units
	W         int // field word size / packets per unit
	UnitSize  int // bytes per unit
	PlaneSize int // UnitSize / W
}

// NewLayout validates the geometry and returns the layout. UnitSize must be
// a positive multiple of 8*w so that every plane is a whole number of
// uint64 words; this matches the alignment real XOR-based libraries require
// and keeps every kernel free of byte tails on the hot path.
func NewLayout(k, r, w, unitSize int) (Layout, error) {
	if k <= 0 || r <= 0 {
		return Layout{}, fmt.Errorf("bitmatrix: invalid k=%d r=%d", k, r)
	}
	if w <= 0 || w > 32 {
		return Layout{}, fmt.Errorf("bitmatrix: invalid w=%d", w)
	}
	if unitSize <= 0 || unitSize%(8*w) != 0 {
		return Layout{}, fmt.Errorf("bitmatrix: unit size %d must be a positive multiple of 8*w=%d", unitSize, 8*w)
	}
	return Layout{K: k, R: r, W: w, UnitSize: unitSize, PlaneSize: unitSize / w}, nil
}

// DataLen returns the required length of the contiguous data buffer.
func (l Layout) DataLen() int { return l.K * l.UnitSize }

// ParityLen returns the required length of the contiguous parity buffer.
func (l Layout) ParityLen() int { return l.R * l.UnitSize }

// DataPlanes returns the number of planes in the data operand, k*w.
func (l Layout) DataPlanes() int { return l.K * l.W }

// ParityPlanes returns the number of planes in the parity operand, r*w.
func (l Layout) ParityPlanes() int { return l.R * l.W }

// CheckData validates a contiguous data buffer's length. Failures wrap
// ecerr.ErrShardSize so they classify through the public taxonomy.
func (l Layout) CheckData(data []byte) error {
	if len(data) != l.DataLen() {
		return fmt.Errorf("%w: data length %d, want k*unit = %d", ecerr.ErrShardSize, len(data), l.DataLen())
	}
	return nil
}

// CheckParity validates a contiguous parity buffer's length. Failures wrap
// ecerr.ErrShardSize so they classify through the public taxonomy.
func (l Layout) CheckParity(parity []byte) error {
	if len(parity) != l.ParityLen() {
		return fmt.Errorf("%w: parity length %d, want r*unit = %d", ecerr.ErrShardSize, len(parity), l.ParityLen())
	}
	return nil
}

// Plane returns plane j of a contiguous multi-unit buffer. The buffer may
// be the data operand (k units) or the parity operand (r units); j indexes
// unit-major, packet-minor.
func (l Layout) Plane(buf []byte, j int) []byte {
	unit := j / l.W
	packet := j % l.W
	off := unit*l.UnitSize + packet*l.PlaneSize
	return buf[off : off+l.PlaneSize]
}

// Planes slices a contiguous buffer holding units*W planes into the
// per-plane subslices, unit-major.
func (l Layout) Planes(buf []byte, units int) [][]byte {
	out := make([][]byte, units*l.W)
	for j := range out {
		out[j] = l.Plane(buf, j)
	}
	return out
}

// UnitPlanes slices a single unit's buffer into its w packet planes.
func (l Layout) UnitPlanes(unit []byte) [][]byte {
	if len(unit) != l.UnitSize {
		panic(fmt.Sprintf("bitmatrix: unit length %d, want %d", len(unit), l.UnitSize))
	}
	out := make([][]byte, l.W)
	for p := 0; p < l.W; p++ {
		out[p] = unit[p*l.PlaneSize : (p+1)*l.PlaneSize]
	}
	return out
}

// EncodeReference encodes parity from data using the bitmatrix bm
// (ParityPlanes x DataPlanes) with the plainest possible loop nest: for
// every parity plane, XOR in every data plane whose generator bit is set,
// one byte at a time. It is the oracle every optimized encoder is verified
// against, deliberately mirroring Listing 2 of the paper with no
// optimization at all.
func EncodeReference(bm *BitMatrix, l Layout, data, parity []byte) error {
	if bm.Rows() != l.ParityPlanes() || bm.Cols() != l.DataPlanes() {
		return fmt.Errorf("bitmatrix: generator is %dx%d, layout wants %dx%d",
			bm.Rows(), bm.Cols(), l.ParityPlanes(), l.DataPlanes())
	}
	if err := l.CheckData(data); err != nil {
		return err
	}
	if err := l.CheckParity(parity); err != nil {
		return err
	}
	for i := 0; i < bm.Rows(); i++ {
		out := l.Plane(parity, i)
		for b := range out {
			out[b] = 0
		}
		for j := 0; j < bm.Cols(); j++ {
			if !bm.At(i, j) {
				continue
			}
			in := l.Plane(data, j)
			for b := range out {
				out[b] ^= in[b]
			}
		}
	}
	return nil
}

// ApplyReference computes out = bm * in over the plane layout, where in
// holds inUnits*W planes and out holds outUnits*W planes, without requiring
// the operands to be the layout's data/parity shapes. Decode paths use it
// to apply reconstruction bitmatrices. Plane sizes are taken from l.
func ApplyReference(bm *BitMatrix, l Layout, in []byte, inUnits int, out []byte, outUnits int) error {
	if bm.Rows() != outUnits*l.W || bm.Cols() != inUnits*l.W {
		return fmt.Errorf("bitmatrix: matrix is %dx%d, want %dx%d",
			bm.Rows(), bm.Cols(), outUnits*l.W, inUnits*l.W)
	}
	if len(in) != inUnits*l.UnitSize {
		return fmt.Errorf("bitmatrix: input length %d, want %d", len(in), inUnits*l.UnitSize)
	}
	if len(out) != outUnits*l.UnitSize {
		return fmt.Errorf("bitmatrix: output length %d, want %d", len(out), outUnits*l.UnitSize)
	}
	for i := 0; i < bm.Rows(); i++ {
		dst := l.Plane(out, i)
		for b := range dst {
			dst[b] = 0
		}
		for _, j := range bm.RowOnes(i) {
			src := l.Plane(in, j)
			for b := range dst {
				dst[b] ^= src[b]
			}
		}
	}
	return nil
}
