package bitmatrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

var f8 = gf.MustField(8)

func randBitMatrix(rng *rand.Rand, rows, cols int) *BitMatrix {
	b := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Intn(2) == 1 {
				b.Set(i, j, true)
			}
		}
	}
	return b
}

func TestSetAtOnes(t *testing.T) {
	b := New(3, 70) // spans two words per row
	b.Set(0, 0, true)
	b.Set(1, 63, true)
	b.Set(1, 64, true)
	b.Set(2, 69, true)
	if !b.At(0, 0) || !b.At(1, 63) || !b.At(1, 64) || !b.At(2, 69) {
		t.Fatal("At/Set roundtrip failed across word boundaries")
	}
	if b.Ones() != 4 {
		t.Fatalf("Ones=%d want 4", b.Ones())
	}
	b.Set(1, 63, false)
	if b.At(1, 63) || b.Ones() != 3 {
		t.Fatal("clearing a bit failed")
	}
	got := b.RowOnes(1)
	if len(got) != 1 || got[0] != 64 {
		t.Fatalf("RowOnes=%v want [64]", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out of range should panic")
			}
		}()
		b.At(0, 70)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid shape should panic")
			}
		}()
		New(0, 5)
	}()
}

func TestCloneEqualString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randBitMatrix(rng, 5, 9)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, !c.At(0, 0))
	if b.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	if b.Equal(New(5, 8)) {
		t.Fatal("Equal missed shape difference")
	}
	if len(b.String()) != 5*10 {
		t.Fatalf("String length %d", len(b.String()))
	}
}

func TestElementMatrixActsAsMultiplication(t *testing.T) {
	// For every e, v in GF(2^16) sampled: ElementMatrix(e) * bits(v) = bits(e*v).
	for _, w := range []uint{4, 8, 16} {
		f := gf.MustField(w)
		prop := func(e16, v16 uint16) bool {
			e := uint32(e16) & f.Mask()
			v := uint32(v16) & f.Mask()
			m := ElementMatrix(f, e)
			var got uint32
			for i := 0; i < int(w); i++ {
				bit := uint32(0)
				for j := 0; j < int(w); j++ {
					if m.At(i, j) && v>>uint(j)&1 == 1 {
						bit ^= 1
					}
				}
				got |= bit << uint(i)
			}
			return got == f.Mul(e, v)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("w=%d: %v", w, err)
		}
	}
}

func TestElementMatrixHomomorphism(t *testing.T) {
	// ElementMatrix(a*b) == ElementMatrix(a) * ElementMatrix(b).
	f := f8
	prop := func(a, b uint8) bool {
		ma := ElementMatrix(f, uint32(a))
		mb := ElementMatrix(f, uint32(b))
		prod, err := ma.Mul(mb)
		if err != nil {
			return false
		}
		return prod.Equal(ElementMatrix(f, f.Mul(uint32(a), uint32(b))))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Identity element maps to identity matrix.
	if !ElementMatrix(f, 1).Equal(IdentityBits(8)) {
		t.Error("ElementMatrix(1) != I")
	}
	if ElementMatrix(f, 0).Ones() != 0 {
		t.Error("ElementMatrix(0) should be zero")
	}
}

func TestFromGFStructure(t *testing.T) {
	m, err := matrix.FromRows(f8, [][]uint32{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	bm := FromGF(m)
	if bm.Rows() != 16 || bm.Cols() != 16 {
		t.Fatalf("shape %dx%d", bm.Rows(), bm.Cols())
	}
	// Block (i, j) must equal ElementMatrix(m[i][j]).
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			blk := ElementMatrix(f8, m.At(i, j))
			for bi := 0; bi < 8; bi++ {
				for bj := 0; bj < 8; bj++ {
					if bm.At(i*8+bi, j*8+bj) != blk.At(bi, bj) {
						t.Fatalf("block (%d,%d) bit (%d,%d) mismatch", i, j, bi, bj)
					}
				}
			}
		}
	}
}

func TestInvertCommutesWithFromGF(t *testing.T) {
	// FromGF(M)^-1 == FromGF(M^-1): bitmatrix conversion is a ring
	// homomorphism, so inversion commutes with it.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		m := matrix.New(f8, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.Uint32()&0xff)
			}
		}
		mInv, err := m.Invert()
		if errors.Is(err, matrix.ErrSingular) {
			if _, err2 := FromGF(m).Invert(); !errors.Is(err2, matrix.ErrSingular) {
				t.Fatal("GF-singular matrix must be bit-singular too")
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		bmInv, err := FromGF(m).Invert()
		if err != nil {
			t.Fatal(err)
		}
		if !bmInv.Equal(FromGF(mInv)) {
			t.Fatal("inversion does not commute with bitmatrix conversion")
		}
	}
}

func TestElementOnes(t *testing.T) {
	for _, w := range []uint{4, 8} {
		f := gf.MustField(w)
		for e := uint32(0); e < f.Size(); e++ {
			if got, want := ElementOnes(f, e), ElementMatrix(f, e).Ones(); got != want {
				t.Fatalf("w=%d e=%d: ElementOnes=%d, matrix says %d", w, e, got, want)
			}
		}
	}
}

func TestCauchyBestBeatsCauchyGood(t *testing.T) {
	for _, cfg := range []struct{ k, r int }{{6, 3}, {8, 4}, {10, 4}} {
		f := gf.MustField(8)
		best, err := CauchyBest(f, cfg.r, cfg.k, 64)
		if err != nil {
			t.Fatal(err)
		}
		good, err := matrix.CauchyGood(f, cfg.r, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		bOnes := FromGF(best).Ones()
		gOnes := FromGF(good).Ones()
		if bOnes > gOnes {
			t.Errorf("k=%d r=%d: CauchyBest ones %d > CauchyGood ones %d", cfg.k, cfg.r, bOnes, gOnes)
		}
		t.Logf("k=%d r=%d: best=%d good=%d (%.1f%% fewer)", cfg.k, cfg.r, bOnes, gOnes, 100*float64(gOnes-bOnes)/float64(gOnes))
		// The searched matrix must still be MDS.
		if cfg.k+cfg.r <= 10 {
			ok, err := matrix.IsMDS(best)
			if err != nil || !ok {
				t.Fatalf("k=%d r=%d: CauchyBest not MDS (ok=%v err=%v)", cfg.k, cfg.r, ok, err)
			}
		}
	}
	// Tiny fields where too few candidates exist must error.
	f4 := gf.MustField(4)
	if _, err := CauchyBest(f4, 8, 10, 99); err == nil {
		t.Error("oversized code accepted")
	}
}

func TestBitMatrixMulInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	id := IdentityBits(16)
	for trial := 0; trial < 20; trial++ {
		b := randBitMatrix(rng, 16, 16)
		inv, err := b.Invert()
		if errors.Is(err, matrix.ErrSingular) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(id) {
			t.Fatal("b * b^-1 != I")
		}
	}
	if _, err := New(2, 3).Invert(); err == nil {
		t.Error("non-square invert should fail")
	}
	if _, err := New(2, 3).Mul(New(2, 3)); err == nil {
		t.Error("mismatched mul should fail")
	}
	// Singular: duplicate rows.
	s := New(2, 2)
	s.Set(0, 0, true)
	s.Set(1, 0, true)
	if _, err := s.Invert(); !errors.Is(err, matrix.ErrSingular) {
		t.Error("singular bitmatrix not detected")
	}
}
