package te

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFuseSpatialAxes(t *testing.T) {
	m, k, n := 4, 5, 8
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	i, j := axes[0], axes[1]
	f, err := s.Fuse(i, j)
	if err != nil {
		t.Fatal(err)
	}
	if f.Extent != m*n || f.Kind != Spatial {
		t.Fatalf("fused axis extent=%d kind=%v", f.Extent, f.Kind)
	}
	leaf := s.Leaf()
	if len(leaf) != 2 || leaf[0] != f {
		t.Fatalf("leaf after fuse: %v", leaf)
	}
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	out := mod.Print()
	if !strings.Contains(out, "/ 8") || !strings.Contains(out, "% 8") {
		t.Errorf("fused IR missing div/mod reconstruction:\n%s", out)
	}
	rng := rand.New(rand.NewSource(1))
	bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	checkC(t, "fused", bind, c, naiveEC(abits, bw, m, k, n))

	// Fused schedules are not specialized by the code generator.
	if _, err := Build(s); err == nil {
		t.Error("Build should reject fused schedules")
	}
}

func TestFuseThenSplit(t *testing.T) {
	// The TVM idiom: fuse two axes, then split the fused axis for
	// parallel+vector structure. Semantics must be preserved.
	m, k, n := 6, 3, 4
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	f, err := s.Fuse(axes[0], axes[1])
	if err != nil {
		t.Fatal(err)
	}
	fo, fi, err := s.Split(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unroll(fi); err != nil {
		t.Fatal(err)
	}
	_ = fo
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	if err := Interpret(mod, bind); err != nil {
		t.Fatalf("%v\n%s", err, mod.Print())
	}
	checkC(t, "fuse-then-split", bind, c, naiveEC(abits, bw, m, k, n))
}

func TestFuseSplitAxes(t *testing.T) {
	// Split j, then fuse i with jo — mixing derived axes.
	m, k, n := 4, 3, 12
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	i, j := axes[0], axes[1]
	jo, ji, err := s.Split(j, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = ji
	if _, err := s.Fuse(i, jo); err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	if err := Interpret(mod, bind); err != nil {
		t.Fatalf("%v\n%s", err, mod.Print())
	}
	checkC(t, "fuse-of-split", bind, c, naiveEC(abits, bw, m, k, n))
}

func TestFuseReductionWithSpatialRejected(t *testing.T) {
	_, _, c := ECComputeDecl(4, 4, 4)
	s := CreateSchedule(c)
	axes := s.Leaf() // i, j, k
	if _, err := s.Fuse(axes[1], axes[2]); err == nil {
		t.Error("fusing spatial with reduction accepted")
	}
	// Non-adjacent.
	if _, err := s.Fuse(axes[0], axes[2]); err == nil {
		t.Error("fusing non-adjacent axes accepted")
	}
	// Non-leaf.
	if _, err := s.Fuse(&IterVar{Name: "x", Extent: 2}, axes[0]); err == nil {
		t.Error("fusing non-leaf accepted")
	}
	// Wrong order (inner before outer).
	if _, err := s.Fuse(axes[1], axes[0]); err == nil {
		t.Error("fusing reversed adjacency accepted")
	}
}

func TestDivModExprStrings(t *testing.T) {
	iv := &IterVar{Name: "f", Extent: 8}
	d := &DivExpr{A: V(iv), Div: 4}
	m := &ModExpr{A: V(iv), Mod: 4}
	if d.String() != "(f / 4)" || m.String() != "(f % 4)" {
		t.Errorf("strings: %s, %s", d.String(), m.String())
	}
}
