package te

import (
	"fmt"
)

// Interpret executes a lowered module directly over the bound buffers. It
// is the semantic reference for the code generator: slow (a tree walk per
// element) but transparently faithful to the IR. All loop annotations are
// executed serially — annotations are performance hints, never semantics.
func Interpret(m *Module, b Bindings) error {
	tensors := append([]*Tensor{m.Out}, m.Inputs...)
	if err := b.check(tensors...); err != nil {
		return err
	}
	env := map[*IterVar]int{}
	return execStmt(m.Body, env, b)
}

func execStmt(s Stmt, env map[*IterVar]int, b Bindings) error {
	switch x := s.(type) {
	case *ForStmt:
		for v := 0; v < x.IV.Extent; v++ {
			env[x.IV] = v
			if err := execStmt(x.Body, env, b); err != nil {
				return err
			}
		}
		delete(env, x.IV)
		return nil
	case SeqStmt:
		for _, c := range x {
			if err := execStmt(c, env, b); err != nil {
				return err
			}
		}
		return nil
	case *StoreStmt:
		flat, err := flatIndex(x.T, x.Idx, env)
		if err != nil {
			return err
		}
		v, err := evalValue(x.Val, env, b)
		if err != nil {
			return err
		}
		b[x.T].SetWord(flat, v)
		return nil
	default:
		return fmt.Errorf("te: interpreter hit unknown statement %T", s)
	}
}

// evalIndex evaluates an index expression to an int.
func evalIndex(e Expr, env map[*IterVar]int) (int, error) {
	switch x := e.(type) {
	case *VarExpr:
		v, ok := env[x.IV]
		if !ok {
			return 0, fmt.Errorf("te: variable %s unbound", x.IV.Name)
		}
		return v, nil
	case *ConstExpr:
		return int(x.V), nil
	case *AffineExpr:
		a, err := evalIndex(x.A, env)
		if err != nil {
			return 0, err
		}
		bv, err := evalIndex(x.B, env)
		if err != nil {
			return 0, err
		}
		return a*x.Scale + bv, nil
	case *DivExpr:
		a, err := evalIndex(x.A, env)
		if err != nil {
			return 0, err
		}
		return a / x.Div, nil
	case *ModExpr:
		a, err := evalIndex(x.A, env)
		if err != nil {
			return 0, err
		}
		return a % x.Mod, nil
	default:
		return 0, fmt.Errorf("te: expression %T is not an index", e)
	}
}

// flatIndex resolves a multi-dimensional tensor access to a row-major
// element offset, bounds-checked.
func flatIndex(t *Tensor, idx []Expr, env map[*IterVar]int) (int, error) {
	if len(idx) != len(t.Shape) {
		return 0, fmt.Errorf("te: tensor %q accessed with %d indices", t.Name, len(idx))
	}
	flat := 0
	for d, e := range idx {
		v, err := evalIndex(e, env)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= t.Shape[d] {
			return 0, fmt.Errorf("te: tensor %q index %d out of bounds [0,%d)", t.Name, v, t.Shape[d])
		}
		flat = flat*t.Shape[d] + v
	}
	return flat, nil
}

// evalValue evaluates a value expression to a word.
func evalValue(e Expr, env map[*IterVar]int, b Bindings) (uint64, error) {
	switch x := e.(type) {
	case *ConstExpr:
		return x.V, nil
	case *VarExpr, *AffineExpr, *DivExpr, *ModExpr:
		v, err := evalIndex(x, env)
		return uint64(v), err
	case *LoadExpr:
		buf, ok := b[x.T]
		if !ok {
			return 0, fmt.Errorf("te: tensor %q not bound", x.T.Name)
		}
		flat, err := flatIndex(x.T, x.Idx, env)
		if err != nil {
			return 0, err
		}
		return buf.Word(flat), nil
	case *BinExpr:
		l, err := evalValue(x.L, env, b)
		if err != nil {
			return 0, err
		}
		r, err := evalValue(x.R, env, b)
		if err != nil {
			return 0, err
		}
		return x.Op.apply(l, r), nil
	case *ReduceExpr:
		return 0, fmt.Errorf("te: reduce expression must be lowered before interpretation")
	default:
		return 0, fmt.Errorf("te: unknown value expression %T", e)
	}
}
