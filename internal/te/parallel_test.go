package te

import (
	"math/rand"
	"sync"
	"testing"
)

// buildParallel returns a kernel with the requested parallel axis and
// worker count, over a split column axis.
func buildParallel(t *testing.T, m, k, n, block, workers int, axis ParallelAxis) (*Kernel, *Tensor, *Tensor, *Tensor) {
	t.Helper()
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	i, j := axes[0], axes[1]
	jo, ji, err := s.Split(j, block)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(ji); err != nil {
		t.Fatal(err)
	}
	switch axis {
	case ParallelRows:
		if err := s.Parallel(i); err != nil {
			t.Fatal(err)
		}
	case ParallelBlocks:
		if err := s.Parallel(jo); err != nil {
			t.Fatal(err)
		}
	}
	kern, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	kern.SetWorkers(workers)
	return kern, a, b, c
}

// TestParallelKernelsMatchSerial exercises the goroutine pool with more
// workers than this machine has cores; run with -race to check the range
// partitioning.
func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, axis := range []ParallelAxis{ParallelRows, ParallelBlocks} {
		for _, workers := range []int{2, 3, 8, 64} {
			m, k, n := 7, 9, 64
			kern, a, b, c := buildParallel(t, m, k, n, 16, workers, axis)
			bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
			if err := kern.Exec(bind); err != nil {
				t.Fatalf("axis=%v workers=%d: %v", axis, workers, err)
			}
			checkC(t, kern.Config().String(), bind, c, naiveEC(abits, bw, m, k, n))
		}
	}
}

// TestParallelMoreWorkersThanWork covers the clamp when workers exceed the
// number of rows/blocks.
func TestParallelMoreWorkersThanWork(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 2, 3, 32 // 2 rows, 2 blocks of 16
	for _, axis := range []ParallelAxis{ParallelRows, ParallelBlocks} {
		kern, a, b, c := buildParallel(t, m, k, n, 16, 16, axis)
		bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
		if err := kern.Exec(bind); err != nil {
			t.Fatal(err)
		}
		checkC(t, "clamped", bind, c, naiveEC(abits, bw, m, k, n))
	}
}

// TestKernelConcurrentExec runs one kernel from many goroutines with
// disjoint output buffers — the concurrency contract engines rely on.
func TestKernelConcurrentExec(t *testing.T) {
	m, k, n := 8, 16, 128
	kern, a, b, c := buildParallel(t, m, k, n, 32, 4, ParallelRows)
	rng := rand.New(rand.NewSource(3))
	bind0, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	want := naiveEC(abits, bw, m, k, n)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]Buffer, 8)
	for g := 0; g < 8; g++ {
		outs[g] = NewBuffer(c)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			bind := Bindings{a: bind0[a], b: bind0[b], c: outs[g]}
			errs[g] = kern.Exec(bind)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for e, w := range want {
			if outs[g].Word(e) != w {
				t.Fatalf("goroutine %d: element %d wrong", g, e)
			}
		}
	}
}
