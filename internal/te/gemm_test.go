package te

import (
	"math/rand"
	"testing"
)

func gemmOracle(aw, bw []uint64, m, k, n int) []uint64 {
	c := make([]uint64, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += aw[i*k+kk] * bw[kk*n+j]
			}
		}
	}
	return c
}

func gemmBindings(rng *rand.Rand, a, b, c *Tensor, m, k, n int) (Bindings, []uint64, []uint64) {
	aw := make([]uint64, m*k)
	bw := make([]uint64, k*n)
	for i := range aw {
		aw[i] = uint64(rng.Intn(1 << 20))
	}
	for i := range bw {
		bw[i] = uint64(rng.Intn(1 << 20))
	}
	ab, bb := NewBuffer(a), NewBuffer(b)
	for i, w := range aw {
		ab.SetWord(i, w)
	}
	for i, w := range bw {
		bb.SetWord(i, w)
	}
	return Bindings{a: ab, b: bb, c: NewBuffer(c)}, aw, bw
}

func TestGEMMKernelMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 4*(1+rng.Intn(6))
		a, b, c := GEMMComputeDecl(m, k, n)
		s := CreateSchedule(c)
		axes := s.Leaf()
		i, j := axes[0], axes[1]

		var jo *IterVar
		word := j
		if rng.Intn(2) == 1 {
			divs := divisorsOf(n)
			var err error
			var ji *IterVar
			jo, ji, err = s.Split(j, divs[rng.Intn(len(divs))])
			if err != nil {
				t.Fatal(err)
			}
			word = ji
		}
		if err := s.Vectorize(word); err != nil {
			t.Fatal(err)
		}
		if jo != nil && rng.Intn(2) == 1 {
			if err := s.Reorder(jo, i); err != nil {
				t.Fatal(err)
			}
		}
		switch rng.Intn(3) {
		case 0:
			if err := s.Parallel(i); err != nil {
				t.Fatal(err)
			}
		case 1:
			if jo != nil {
				if err := s.Parallel(jo); err != nil {
					t.Fatal(err)
				}
			}
		}

		kern, err := BuildGEMM(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		kern.SetWorkers(1 + rng.Intn(4))
		bind, aw, bw := gemmBindings(rng, a, b, c, m, k, n)
		if err := kern.Exec(bind); err != nil {
			t.Fatal(err)
		}
		want := gemmOracle(aw, bw, m, k, n)
		cb := bind[c]
		for e, w := range want {
			if cb.Word(e) != w {
				t.Fatalf("trial %d (%s): C[%d]=%d want %d", trial, kern.Config(), e, cb.Word(e), w)
			}
		}

		// The interpreter must agree too.
		mod, err := Lower(s)
		if err != nil {
			t.Fatal(err)
		}
		bind2 := Bindings{a: bind[a], b: bind[b], c: NewBuffer(c)}
		if err := Interpret(mod, bind2); err != nil {
			t.Fatal(err)
		}
		for e, w := range want {
			if bind2[c].Word(e) != w {
				t.Fatalf("trial %d: interpreter C[%d] wrong", trial, e)
			}
		}
	}
}

func TestBuildGEMMRejections(t *testing.T) {
	// EC pattern is not a GEMM.
	_, _, c := ECComputeDecl(4, 4, 8)
	s := CreateSchedule(c)
	axes := s.Leaf()
	if err := s.Vectorize(axes[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGEMM(s); err == nil {
		t.Error("BuildGEMM accepted the EC pattern")
	}
	// GEMM without vectorized column axis.
	_, _, g := GEMMComputeDecl(4, 4, 8)
	s2 := CreateSchedule(g)
	if _, err := BuildGEMM(s2); err == nil {
		t.Error("BuildGEMM accepted unvectorized schedule")
	}
	// Build (EC template) must reject the GEMM pattern symmetrically.
	_, _, g3 := GEMMComputeDecl(4, 4, 8)
	s3 := CreateSchedule(g3)
	if err := s3.Vectorize(s3.Leaf()[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(s3); err == nil {
		t.Error("Build accepted the GEMM pattern")
	}
	k, err := BuildGEMM(s3)
	if err != nil {
		t.Fatal(err)
	}
	if k.Config().String() == "" {
		t.Error("config string empty")
	}
}
