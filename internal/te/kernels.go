package te

import (
	"fmt"
	"sync"

	"gemmec/internal/gf"
)

// This file is the execution engine behind Build: word-parallel, cache
// tiled, reduction-grouped GF(2) GEMM. It is what TVM's generated LLVM
// would be on a real platform; the specialization parameters all come from
// the schedule via KernelConfig.

// PrebindMask precomputes the generator selection lists for a mask buffer
// that will be passed unchanged on every Exec (the common case: a coder's
// generator is fixed at construction). Exec recognizes the prebound buffer
// by identity and skips re-deriving the lists, making steady-state encoding
// allocation-free. Call before sharing the kernel across goroutines.
func (k *Kernel) PrebindMask(a Buffer) error {
	if len(a) != k.a.Bytes() {
		return fmt.Errorf("te: mask buffer %d bytes, want %d", len(a), k.a.Bytes())
	}
	rows, err := maskRows(a, k.cfg.M, k.cfg.K)
	if err != nil {
		return err
	}
	k.preMask = &a[0]
	k.preLen = len(a)
	k.preRows = rows
	return nil
}

// Exec runs the kernel over the bound buffers. A (M x K bitmask words) is
// read to a selection list per row; B (K x N words) and C (M x N words) are
// processed as byte regions through the fused XOR kernels. BitMask words
// must be 0 or ^0; anything else is rejected.
func (k *Kernel) Exec(bind Bindings) error {
	if err := bind.check(k.a, k.b, k.c); err != nil {
		return err
	}
	return k.ExecBufs(bind[k.a], bind[k.b], bind[k.c])
}

// ExecBufs is Exec without the Bindings map: the operand buffers are passed
// positionally (generator mask, data, output). Hot paths that run one
// kernel per stripe use it to keep steady-state encoding allocation-light.
func (k *Kernel) ExecBufs(aBuf, bBuf, cBuf Buffer) error {
	if len(aBuf) != k.a.Bytes() || len(bBuf) != k.b.Bytes() || len(cBuf) != k.c.Bytes() {
		return fmt.Errorf("te: buffer sizes %d/%d/%d, want %d/%d/%d",
			len(aBuf), len(bBuf), len(cBuf), k.a.Bytes(), k.b.Bytes(), k.c.Bytes())
	}
	cfg := k.cfg

	var rowOnes [][]int
	if k.preRows != nil && len(aBuf) == k.preLen && &aBuf[0] == k.preMask {
		rowOnes = k.preRows
	} else {
		var err error
		rowOnes, err = maskRows(aBuf, cfg.M, cfg.K)
		if err != nil {
			return err
		}
	}

	nBlocks := (cfg.N + cfg.BlockWords - 1) / cfg.BlockWords
	rowBytes := cfg.N * 8

	// processTile computes C[row, blk*BlockWords : ...] from its sources.
	// With Staged (cache_write), the tile accumulates in the worker-local
	// scratch and is written back once.
	processTile := func(row, blk int, srcs [][]byte, scratch []byte) {
		off := blk * cfg.BlockWords * 8
		end := off + cfg.BlockWords*8
		if end > rowBytes {
			end = rowBytes
		}
		dst := cBuf[row*rowBytes+off : row*rowBytes+end]
		ones := rowOnes[row]
		if len(ones) == 0 {
			clear(dst)
			return
		}
		srcs = srcs[:0]
		for _, kk := range ones {
			srcs = append(srcs, bBuf[kk*rowBytes+off:kk*rowBytes+end])
		}
		acc := dst
		if scratch != nil {
			acc = scratch[:end-off]
		}
		gf.CopyRegion(acc, srcs[0])
		xorGrouped(acc, srcs[1:], cfg.Fanin)
		if scratch != nil {
			gf.CopyRegion(dst, acc)
		}
	}

	runRange := func(lo, hi int, overRows bool) {
		srcs := make([][]byte, 0, cfg.K)
		var scratch []byte
		if cfg.Staged {
			scratch = make([]byte, cfg.BlockWords*8)
		}
		if overRows {
			for row := lo; row < hi; row++ {
				for blk := 0; blk < nBlocks; blk++ {
					processTile(row, blk, srcs, scratch)
				}
			}
		} else {
			for blk := lo; blk < hi; blk++ {
				for row := 0; row < cfg.M; row++ {
					processTile(row, blk, srcs, scratch)
				}
			}
		}
	}

	workers := cfg.Workers
	switch cfg.Parallel {
	case ParallelRows:
		parallelRanges(cfg.M, workers, func(lo, hi int) { runRange(lo, hi, true) })
	case ParallelBlocks:
		parallelRanges(nBlocks, workers, func(lo, hi int) { runRange(lo, hi, false) })
	default:
		if cfg.RowsOuter {
			runRange(0, cfg.M, true)
		} else {
			runRange(0, nBlocks, false)
		}
	}
	return nil
}

// maskRows converts an M x K bitmask buffer into per-row selection lists,
// validating the 0-or-all-ones invariant of BitMask tensors.
func maskRows(a Buffer, m, k int) ([][]int, error) {
	rows := make([][]int, m)
	for i := 0; i < m; i++ {
		var ones []int
		for j := 0; j < k; j++ {
			switch a.Word(i*k + j) {
			case 0:
			case ^uint64(0):
				ones = append(ones, j)
			default:
				return nil, fmt.Errorf("te: bitmask word (%d,%d) is %#x, want 0 or ^0", i, j, a.Word(i*k+j))
			}
		}
		rows[i] = ones
	}
	return rows, nil
}

// xorGrouped XORs the sources into dst in passes of at most fanin sources,
// dispatching to the widest fused kernel for each pass.
func xorGrouped(dst []byte, srcs [][]byte, fanin int) {
	for len(srcs) > 0 {
		n := fanin
		if n > len(srcs) {
			n = len(srcs)
		}
		switch {
		case n >= 8:
			var g [8][]byte
			copy(g[:], srcs[:8])
			gf.XorRegion8(dst, &g)
			srcs = srcs[8:]
		case n >= 4:
			gf.XorRegion4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
			srcs = srcs[4:]
		case n >= 2:
			gf.XorRegion2(dst, srcs[0], srcs[1])
			srcs = srcs[2:]
		default:
			gf.XorRegion(dst, srcs[0])
			srcs = srcs[1:]
		}
	}
}

// parallelRanges splits [0, n) into near-equal contiguous ranges across
// workers goroutines and waits for completion.
func parallelRanges(n, workers int, f func(lo, hi int)) {
	if workers <= 1 || n <= 1 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PackMask writes the M x K bit matrix rows (as boolean set-lists or a
// predicate) into a BitMask buffer: bit set -> ^0, clear -> 0.
func PackMask(buf Buffer, m, k int, bit func(i, j int) bool) error {
	if len(buf) != m*k*8 {
		return fmt.Errorf("te: mask buffer %d bytes, want %d", len(buf), m*k*8)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			v := uint64(0)
			if bit(i, j) {
				v = ^uint64(0)
			}
			buf.SetWord(i*k+j, v)
		}
	}
	return nil
}
