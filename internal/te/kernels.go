package te

import (
	"fmt"
	"sync"

	"gemmec/internal/gf"
)

// This file is the execution engine behind Build: word-parallel, cache
// tiled, reduction-grouped GF(2) GEMM. It is what TVM's generated LLVM
// would be on a real platform; the specialization parameters all come from
// the schedule via KernelConfig.

// PrebindMask precomputes the generator selection lists for a mask buffer
// that will be passed unchanged on every Exec (the common case: a coder's
// generator is fixed at construction). Exec recognizes the prebound buffer
// by identity and skips re-deriving the lists, making steady-state encoding
// allocation-free. Call before sharing the kernel across goroutines.
func (k *Kernel) PrebindMask(a Buffer) error {
	if len(a) != k.a.Bytes() {
		return fmt.Errorf("te: mask buffer %d bytes, want %d", len(a), k.a.Bytes())
	}
	rows, err := maskRows(a, k.cfg.M, k.cfg.K)
	if err != nil {
		return err
	}
	k.preMask = &a[0]
	k.preLen = len(a)
	k.preRows = rows
	return nil
}

// Exec runs the kernel over the bound buffers. A (M x K bitmask words) is
// read to a selection list per row; B (K x N words) and C (M x N words) are
// processed as byte regions through the fused XOR kernels. BitMask words
// must be 0 or ^0; anything else is rejected.
func (k *Kernel) Exec(bind Bindings) error {
	if err := bind.check(k.a, k.b, k.c); err != nil {
		return err
	}
	return k.ExecBufs(bind[k.a], bind[k.b], bind[k.c])
}

// ExecBufs is Exec without the Bindings map: the operand buffers are passed
// positionally (generator mask, data, output). Hot paths that run one
// kernel per stripe use it to keep steady-state encoding allocation-light.
func (k *Kernel) ExecBufs(aBuf, bBuf, cBuf Buffer) error {
	if len(aBuf) != k.a.Bytes() || len(bBuf) != k.b.Bytes() || len(cBuf) != k.c.Bytes() {
		return fmt.Errorf("te: buffer sizes %d/%d/%d, want %d/%d/%d",
			len(aBuf), len(bBuf), len(cBuf), k.a.Bytes(), k.b.Bytes(), k.c.Bytes())
	}
	cfg := k.cfg

	var rowOnes [][]int
	if k.preRows != nil && len(aBuf) == k.preLen && &aBuf[0] == k.preMask {
		rowOnes = k.preRows
	} else {
		var err error
		rowOnes, err = maskRows(aBuf, cfg.M, cfg.K)
		if err != nil {
			return err
		}
	}

	ar := execArgs{
		rowOnes:  rowOnes,
		bBuf:     bBuf,
		cBuf:     cBuf,
		nBlocks:  (cfg.N + cfg.BlockWords - 1) / cfg.BlockWords,
		rowBytes: cfg.N * 8,
	}

	workers := cfg.Workers
	switch cfg.Parallel {
	case ParallelRows:
		parallelRanges(cfg.M, workers, func(lo, hi int) { k.runRange(ar, lo, hi, true) })
	case ParallelBlocks:
		parallelRanges(ar.nBlocks, workers, func(lo, hi int) { k.runRange(ar, lo, hi, false) })
	default:
		if cfg.RowsOuter {
			k.runRange(ar, 0, cfg.M, true)
		} else {
			k.runRange(ar, 0, ar.nBlocks, false)
		}
	}
	return nil
}

// execArgs carries one ExecBufs call's resolved operands into the tile
// loops. Passed by value so the serial path stays on the stack.
type execArgs struct {
	rowOnes  [][]int
	bBuf     Buffer
	cBuf     Buffer
	nBlocks  int
	rowBytes int
}

// execState is the mutable per-range scratch: the source-slice table and,
// under Staged (cache_write), the tile accumulator. States are pooled on
// the kernel so steady-state execution is allocation-free; each concurrent
// range borrows its own, keeping the kernel goroutine-safe.
type execState struct {
	srcs    [][]byte
	scratch []byte
}

func (k *Kernel) getState() *execState {
	if v := k.statePool.Get(); v != nil {
		return v.(*execState)
	}
	st := &execState{srcs: make([][]byte, 0, k.cfg.K)}
	if k.cfg.Staged {
		st.scratch = make([]byte, k.cfg.BlockWords*8)
	}
	return st
}

// runRange executes one contiguous slice of the outer loop axis (rows when
// overRows, word-axis blocks otherwise) with pooled scratch.
func (k *Kernel) runRange(ar execArgs, lo, hi int, overRows bool) {
	st := k.getState()
	if overRows {
		for row := lo; row < hi; row++ {
			for blk := 0; blk < ar.nBlocks; blk++ {
				k.tile(ar, st, row, blk)
			}
		}
	} else {
		for blk := lo; blk < hi; blk++ {
			for row := 0; row < k.cfg.M; row++ {
				k.tile(ar, st, row, blk)
			}
		}
	}
	k.statePool.Put(st)
}

// tile computes C[row, blk*BlockWords : ...] from its sources. With Staged
// (cache_write), the tile accumulates in st.scratch and is written back
// once.
func (k *Kernel) tile(ar execArgs, st *execState, row, blk int) {
	cfg := k.cfg
	off := blk * cfg.BlockWords * 8
	end := off + cfg.BlockWords*8
	if end > ar.rowBytes {
		end = ar.rowBytes
	}
	dst := ar.cBuf[row*ar.rowBytes+off : row*ar.rowBytes+end]
	ones := ar.rowOnes[row]
	if len(ones) == 0 {
		clear(dst)
		return
	}
	srcs := st.srcs[:0]
	for _, kk := range ones {
		srcs = append(srcs, ar.bBuf[kk*ar.rowBytes+off:kk*ar.rowBytes+end])
	}
	st.srcs = srcs // persist any growth beyond the initial K capacity
	acc := dst
	if st.scratch != nil {
		acc = st.scratch[:end-off]
	}
	gf.CopyRegion(acc, srcs[0])
	xorGrouped(acc, srcs[1:], cfg.Fanin)
	if st.scratch != nil {
		gf.CopyRegion(dst, acc)
	}
}

// maskRows converts an M x K bitmask buffer into per-row selection lists,
// validating the 0-or-all-ones invariant of BitMask tensors.
func maskRows(a Buffer, m, k int) ([][]int, error) {
	rows := make([][]int, m)
	for i := 0; i < m; i++ {
		var ones []int
		for j := 0; j < k; j++ {
			switch a.Word(i*k + j) {
			case 0:
			case ^uint64(0):
				ones = append(ones, j)
			default:
				return nil, fmt.Errorf("te: bitmask word (%d,%d) is %#x, want 0 or ^0", i, j, a.Word(i*k+j))
			}
		}
		rows[i] = ones
	}
	return rows, nil
}

// xorGrouped XORs the sources into dst in passes of at most fanin sources,
// dispatching to the widest fused kernel for each pass.
func xorGrouped(dst []byte, srcs [][]byte, fanin int) {
	for len(srcs) > 0 {
		n := fanin
		if n > len(srcs) {
			n = len(srcs)
		}
		switch {
		case n >= 8:
			var g [8][]byte
			copy(g[:], srcs[:8])
			gf.XorRegion8(dst, &g)
			srcs = srcs[8:]
		case n >= 4:
			gf.XorRegion4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
			srcs = srcs[4:]
		case n >= 2:
			gf.XorRegion2(dst, srcs[0], srcs[1])
			srcs = srcs[2:]
		default:
			gf.XorRegion(dst, srcs[0])
			srcs = srcs[1:]
		}
	}
}

// parallelRanges splits [0, n) into near-equal contiguous ranges across
// workers goroutines and waits for completion.
func parallelRanges(n, workers int, f func(lo, hi int)) {
	if workers <= 1 || n <= 1 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PackMask writes the M x K bit matrix rows (as boolean set-lists or a
// predicate) into a BitMask buffer: bit set -> ^0, clear -> 0.
func PackMask(buf Buffer, m, k int, bit func(i, j int) bool) error {
	if len(buf) != m*k*8 {
		return fmt.Errorf("te: mask buffer %d bytes, want %d", len(buf), m*k*8)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			v := uint64(0)
			if bit(i, j) {
				v = ^uint64(0)
			}
			buf.SetWord(i*k+j, v)
		}
	}
	return nil
}
