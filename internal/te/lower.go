package te

import (
	"fmt"
	"strings"
)

// Stmt is a node of the lowered loop IR.
type Stmt interface {
	stmtNode()
}

// ForStmt is a counted loop from 0 to IV.Extent-1.
type ForStmt struct {
	IV   *IterVar
	Kind ForKind
	Body Stmt
}

func (*ForStmt) stmtNode() {}

// SeqStmt executes its children in order.
type SeqStmt []Stmt

func (SeqStmt) stmtNode() {}

// StoreStmt writes Val to tensor T at the given indices.
type StoreStmt struct {
	T   *Tensor
	Idx []Expr
	Val Expr
}

func (*StoreStmt) stmtNode() {}

// Module is a lowered program: an initialization nest (zeroing/identity
// for reductions) followed by the main computation nest.
type Module struct {
	Out    *Tensor
	Inputs []*Tensor
	Body   Stmt
}

// Lower turns a schedule into loop IR, mirroring tvm.lower: an init nest
// over the spatial leaves storing the reducer identity, then the full nest
// storing the accumulated value. Non-reduction computes lower to a single
// nest. The transformation is valid for any leaf order because commutative
// reduction allows spatial and reduction loops to interleave freely once
// initialization happens first.
func Lower(s *Schedule) (*Module, error) {
	op := s.op
	red := findReduce(op.Body)

	// Map each original axis to its reconstruction expression and build the
	// substituted store indices and value expression.
	subst := func(e Expr) Expr { return substExpr(e, s) }
	storeIdx := make([]Expr, len(op.Axes))
	for d, ax := range op.Axes {
		storeIdx[d] = subst(V(ax))
	}

	var body Stmt
	if red == nil {
		body = s.buildNest(s.leaf, &StoreStmt{T: op.Out, Idx: storeIdx, Val: subst(op.Body)})
	} else {
		// Init nest over spatial leaves only.
		var spatialLeaves []*IterVar
		for _, l := range s.leaf {
			if l.Kind == Spatial {
				spatialLeaves = append(spatialLeaves, l)
			}
		}
		initStore := &StoreStmt{T: op.Out, Idx: storeIdx, Val: &ConstExpr{V: red.Reducer.Identity}}
		initNest := s.buildNest(spatialLeaves, initStore)

		acc := &BinExpr{
			Op: red.Reducer.Op,
			L:  op.Out.At(storeIdx...),
			R:  subst(red.Body),
		}
		update := &StoreStmt{T: op.Out, Idx: storeIdx, Val: acc}
		body = SeqStmt{initNest, s.buildNest(s.leaf, update)}
	}

	return &Module{Out: op.Out, Inputs: op.Out.Inputs(), Body: body}, nil
}

// buildNest wraps stmt in loops for the given axes, outermost first.
func (s *Schedule) buildNest(axes []*IterVar, stmt Stmt) Stmt {
	for i := len(axes) - 1; i >= 0; i-- {
		stmt = &ForStmt{IV: axes[i], Kind: s.kinds[axes[i]], Body: stmt}
	}
	return stmt
}

// substExpr rewrites references to split or fused axes into index
// expressions over leaf variables. ReduceExpr nodes must have been peeled
// before calling.
func substExpr(e Expr, s *Schedule) Expr {
	switch x := e.(type) {
	case *VarExpr:
		return s.resolve(x.IV)
	case *ConstExpr:
		return x
	case *AffineExpr:
		return &AffineExpr{A: substExpr(x.A, s), Scale: x.Scale, B: substExpr(x.B, s)}
	case *DivExpr:
		return &DivExpr{A: substExpr(x.A, s), Div: x.Div}
	case *ModExpr:
		return &ModExpr{A: substExpr(x.A, s), Mod: x.Mod}
	case *LoadExpr:
		idx := make([]Expr, len(x.Idx))
		for i, ix := range x.Idx {
			idx[i] = substExpr(ix, s)
		}
		return &LoadExpr{T: x.T, Idx: idx}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: substExpr(x.L, s), R: substExpr(x.R, s)}
	case *ReduceExpr:
		panic("te: reduce expression must be peeled before substitution")
	default:
		panic(fmt.Sprintf("te: unknown expression %T", e))
	}
}

// Print renders the lowered IR as indented pseudo-code, the equivalent of
// tvm.lower(..., simple_mode=True) that the paper's §8 plans to use to
// inspect discovered optimizations.
func (m *Module) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// compute %s%v\n", m.Out.Name, m.Out.Shape)
	printStmt(&b, m.Body, 0)
	return b.String()
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := s.(type) {
	case *ForStmt:
		ann := ""
		if x.Kind != Serial {
			ann = " // " + x.Kind.String()
		}
		fmt.Fprintf(b, "%sfor %s in 0..%d {%s\n", ind, x.IV.Name, x.IV.Extent, ann)
		printStmt(b, x.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case SeqStmt:
		for _, c := range x {
			printStmt(b, c, depth)
		}
	case *StoreStmt:
		idx := make([]string, len(x.Idx))
		for i, e := range x.Idx {
			idx[i] = e.String()
		}
		fmt.Fprintf(b, "%s%s[%s] = %s\n", ind, x.T.Name, strings.Join(idx, ", "), x.Val.String())
	default:
		fmt.Fprintf(b, "%s<unknown stmt %T>\n", ind, s)
	}
}
