// Package te is a miniature tensor-expression compiler modeled on Apache
// TVM's te API, standing in for TVM itself (which has no Go equivalent; see
// DESIGN.md's substitution table). It provides:
//
//   - a declaration language — Placeholder, ReduceAxis, Compute, and
//     commutative reducers — in which Listing 3 of the paper (GEMM and
//     bitmatrix erasure coding) transliterates almost symbol for symbol;
//   - schedules: Split, Reorder, Unroll, Vectorize, Parallel, applied to a
//     compute stage exactly as TVM schedules are;
//   - lowering to an explicit loop IR with a printer;
//   - a reference interpreter that executes the lowered IR directly; and
//   - a specializing code generator (Build) that recognizes the GF(2)
//     GEMM pattern and instantiates word-parallel Go kernels whose tiling,
//     reduction grouping and parallelism come from the schedule.
//
// The interpreter defines the semantics; the code generator is
// property-tested against it across random schedules.
package te

import "fmt"

// DType is the element type of a tensor.
type DType int

const (
	// Word64 elements are little-endian uint64 words. For erasure coding a
	// word is 64 GF(2) lanes — the package's stand-in for a SIMD vector.
	Word64 DType = iota
	// BitMask elements are uint64 words constrained to 0 or ^0. A generator
	// bit b is stored as its broadcast mask so that `mask & data` performs
	// the select of Listing 2 lanewise.
	BitMask
)

func (d DType) String() string {
	switch d {
	case Word64:
		return "word64"
	case BitMask:
		return "bitmask"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// ElemBytes returns the in-memory size of one element.
func (d DType) ElemBytes() int { return 8 }

// IterKind distinguishes spatial axes from reduction axes.
type IterKind int

const (
	// Spatial axes index the output tensor.
	Spatial IterKind = iota
	// Reduction axes are folded by a CommReducer.
	Reduction
)

// IterVar is a loop variable with a static extent. Pointer identity is the
// variable's identity throughout scheduling and lowering.
type IterVar struct {
	Name   string
	Extent int
	Kind   IterKind
}

// ReduceAxis declares a reduction axis of the given extent, mirroring
// tvm.te.reduce_axis.
func ReduceAxis(name string, extent int) *IterVar {
	if extent <= 0 {
		panic(fmt.Sprintf("te: reduce axis %q has extent %d", name, extent))
	}
	return &IterVar{Name: name, Extent: extent, Kind: Reduction}
}

// BinOp enumerates the binary operators the DSL supports.
type BinOp int

const (
	// OpAnd is bitwise AND (the bitmatrix code's "multiplication").
	OpAnd BinOp = iota
	// OpXor is bitwise XOR (the bitmatrix code's "addition").
	OpXor
	// OpMul is integer multiplication (GEMM's multiplication).
	OpMul
	// OpAdd is integer addition (GEMM's summation).
	OpAdd
)

func (o BinOp) String() string {
	switch o {
	case OpAnd:
		return "&"
	case OpXor:
		return "^"
	case OpMul:
		return "*"
	case OpAdd:
		return "+"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// apply evaluates the operator on concrete words.
func (o BinOp) apply(a, b uint64) uint64 {
	switch o {
	case OpAnd:
		return a & b
	case OpXor:
		return a ^ b
	case OpMul:
		return a * b
	case OpAdd:
		return a + b
	default:
		panic("te: unknown operator")
	}
}

// Expr is a scalar expression node.
type Expr interface {
	exprNode()
	String() string
}

// VarExpr references an iteration variable.
type VarExpr struct{ IV *IterVar }

func (*VarExpr) exprNode()        {}
func (e *VarExpr) String() string { return e.IV.Name }

// ConstExpr is a literal word.
type ConstExpr struct{ V uint64 }

func (*ConstExpr) exprNode()        {}
func (e *ConstExpr) String() string { return fmt.Sprintf("%d", e.V) }

// AddExpr is an integer-affine helper used for index reconstruction after
// splits: V = A*Scale + B.
type AffineExpr struct {
	A     Expr
	Scale int
	B     Expr
}

func (*AffineExpr) exprNode() {}
func (e *AffineExpr) String() string {
	return fmt.Sprintf("(%s*%d + %s)", e.A.String(), e.Scale, e.B.String())
}

// DivExpr is integer division by a constant, used to reconstruct the outer
// part of a fused axis: outer = fused / innerExtent.
type DivExpr struct {
	A   Expr
	Div int
}

func (*DivExpr) exprNode()        {}
func (e *DivExpr) String() string { return fmt.Sprintf("(%s / %d)", e.A.String(), e.Div) }

// ModExpr is integer remainder by a constant, used to reconstruct the inner
// part of a fused axis: inner = fused %% innerExtent.
type ModExpr struct {
	A   Expr
	Mod int
}

func (*ModExpr) exprNode()        {}
func (e *ModExpr) String() string { return fmt.Sprintf("(%s %% %d)", e.A.String(), e.Mod) }

// LoadExpr reads tensor T at the given (possibly affine) indices.
type LoadExpr struct {
	T   *Tensor
	Idx []Expr
}

func (*LoadExpr) exprNode() {}
func (e *LoadExpr) String() string {
	s := e.T.Name + "["
	for i, ix := range e.Idx {
		if i > 0 {
			s += ", "
		}
		s += ix.String()
	}
	return s + "]"
}

// BinExpr applies Op to L and R.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (*BinExpr) exprNode() {}
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}

// ReduceExpr folds Body over Axis with Reducer.
type ReduceExpr struct {
	Reducer *CommReducer
	Body    Expr
	Axis    *IterVar
}

func (*ReduceExpr) exprNode() {}
func (e *ReduceExpr) String() string {
	return fmt.Sprintf("%s(%s, axis=%s)", e.Reducer.Name, e.Body.String(), e.Axis.Name)
}

// CommReducer is a commutative, associative reduction with an identity
// element, mirroring tvm.te.comm_reducer.
type CommReducer struct {
	Name     string
	Op       BinOp
	Identity uint64
}

// XorReducer is the bitmatrix code's reducer: identity 0, combiner XOR.
// This is line 10 of the paper's Listing 3.
var XorReducer = &CommReducer{Name: "xor", Op: OpXor, Identity: 0}

// SumReducer is GEMM's reducer: identity 0, combiner +.
var SumReducer = &CommReducer{Name: "sum", Op: OpAdd, Identity: 0}

// Reduce builds a reduction of body over axis, mirroring the call shape of
// tvm's sum(...)/comm_reducer(...) application.
func (r *CommReducer) Reduce(body Expr, axis *IterVar) Expr {
	if axis.Kind != Reduction {
		panic(fmt.Sprintf("te: %s is not a reduction axis", axis.Name))
	}
	return &ReduceExpr{Reducer: r, Body: body, Axis: axis}
}

// And builds a bitwise-AND node.
func And(l, r Expr) Expr { return &BinExpr{Op: OpAnd, L: l, R: r} }

// Xor builds a bitwise-XOR node.
func Xor(l, r Expr) Expr { return &BinExpr{Op: OpXor, L: l, R: r} }

// Mul builds a multiplication node.
func Mul(l, r Expr) Expr { return &BinExpr{Op: OpMul, L: l, R: r} }

// Add builds an addition node.
func Add(l, r Expr) Expr { return &BinExpr{Op: OpAdd, L: l, R: r} }

// V wraps an IterVar as an expression.
func V(iv *IterVar) Expr { return &VarExpr{IV: iv} }
