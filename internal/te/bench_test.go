package te

import (
	"math/rand"
	"testing"
)

// benchSetup builds a k=10/r=4/w=8-shaped problem over 16 KiB planes.
func benchSetup(b *testing.B, params func(s *Schedule, i, j, rk *IterVar) error) (*Kernel, Bindings) {
	b.Helper()
	m, k, n := 32, 80, 2048
	a, bt, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	if err := params(s, axes[0], axes[1], axes[2]); err != nil {
		b.Fatal(err)
	}
	kern, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	aBuf := NewBuffer(a)
	if err := PackMask(aBuf, m, k, func(i, j int) bool { return rng.Intn(2) == 1 }); err != nil {
		b.Fatal(err)
	}
	bBuf := NewBuffer(bt)
	rng.Read(bBuf)
	return kern, Bindings{a: aBuf, bt: bBuf, c: NewBuffer(c)}
}

func BenchmarkKernelNaive(b *testing.B) {
	kern, bind := benchSetup(b, func(s *Schedule, i, j, rk *IterVar) error {
		return s.Vectorize(j)
	})
	b.SetBytes(80 * 2048 * 8)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := kern.Exec(bind); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTuned(b *testing.B) {
	kern, bind := benchSetup(b, func(s *Schedule, i, j, rk *IterVar) error {
		jo, ji, err := s.Split(j, 256)
		if err != nil {
			return err
		}
		if err := s.Vectorize(ji); err != nil {
			return err
		}
		if _, ki, err := s.Split(rk, 8); err != nil {
			return err
		} else if err := s.Unroll(ki); err != nil {
			return err
		}
		return s.Reorder(jo, i)
	})
	b.SetBytes(80 * 2048 * 8)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := kern.Exec(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter shows the cost of the semantic reference relative to
// compiled kernels (expect ~3 orders of magnitude on a small shape).
func BenchmarkInterpreter(b *testing.B) {
	m, k, n := 8, 16, 64
	a, bt, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	if err := s.Vectorize(s.Leaf()[1]); err != nil {
		b.Fatal(err)
	}
	mod, err := Lower(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	aBuf := NewBuffer(a)
	if err := PackMask(aBuf, m, k, func(i, j int) bool { return rng.Intn(2) == 1 }); err != nil {
		b.Fatal(err)
	}
	bBuf := NewBuffer(bt)
	rng.Read(bBuf)
	bind := Bindings{a: aBuf, bt: bBuf, c: NewBuffer(c)}
	b.SetBytes(int64(k * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Interpret(mod, bind); err != nil {
			b.Fatal(err)
		}
	}
}
