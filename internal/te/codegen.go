package te

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrUnsupported is returned by Build when the scheduled computation does
// not match a pattern the code generator knows how to specialize. Callers
// fall back to the interpreter, just as TVM falls back to unoptimized
// codegen for operators outside its tuned templates.
var ErrUnsupported = errors.New("te: computation not supported by code generator")

// ParallelAxis says which loop the kernel parallelizes across goroutines.
type ParallelAxis int

const (
	// ParallelNone runs serially.
	ParallelNone ParallelAxis = iota
	// ParallelRows parallelizes across output rows.
	ParallelRows
	// ParallelBlocks parallelizes across word-axis tiles.
	ParallelBlocks
)

func (p ParallelAxis) String() string {
	switch p {
	case ParallelNone:
		return "none"
	case ParallelRows:
		return "rows"
	case ParallelBlocks:
		return "blocks"
	default:
		return fmt.Sprintf("parallel(%d)", int(p))
	}
}

// KernelConfig is the specialization the code generator extracted from a
// schedule. It is exactly the optimization vocabulary of §4.2's loop-nest
// discussion: cache tiling of the word axis, reduction-group fusion
// (unrolling), loop order, and multicore parallelism.
type KernelConfig struct {
	M, K, N    int // rows, reduction extent, words per row
	BlockWords int // word-axis tile per pass
	Fanin      int // XOR sources fused per pass (1, 2, 4 or 8)
	Workers    int // goroutines when Parallel != ParallelNone
	RowsOuter  bool
	Parallel   ParallelAxis
	// Staged accumulates each tile in a worker-local buffer (cache_write)
	// and writes it back once, instead of accumulating in the destination.
	Staged bool
}

func (c KernelConfig) String() string {
	staged := ""
	if c.Staged {
		staged = " staged"
	}
	return fmt.Sprintf("block=%dw fanin=%d order=%s parallel=%s x%d%s",
		c.BlockWords, c.Fanin, map[bool]string{true: "rows-outer", false: "blocks-outer"}[c.RowsOuter],
		c.Parallel, c.Workers, staged)
}

// Kernel is a compiled executor for a scheduled GF(2) GEMM.
type Kernel struct {
	cfg     KernelConfig
	a, b, c *Tensor

	// PrebindMask cache: selection lists for a fixed generator buffer.
	preMask *byte
	preLen  int
	preRows [][]int

	// statePool recycles per-range execution scratch (execState) so
	// steady-state Exec/ExecBufs calls allocate nothing.
	statePool sync.Pool
}

// Config returns the extracted specialization.
func (k *Kernel) Config() KernelConfig { return k.cfg }

// ECComputeDecl declares the bitmatrix erasure code of the paper's
// Listing 3 lines 9-12: A is the (M x K) generator bitmask, B the (K x N)
// data planes in words, and the result C[i,j] = xor_k(A[i,k] & B[k,j]).
// It returns the three tensors; schedule C and Build the schedule to get a
// kernel.
func ECComputeDecl(m, k, n int) (a, b, c *Tensor) {
	a = Placeholder("A", BitMask, m, k)
	b = Placeholder("B", Word64, k, n)
	rk := ReduceAxis("k", k)
	c = Compute("C", []int{m, n}, Word64, func(iv []*IterVar) Expr {
		return XorReducer.Reduce(And(a.At(V(iv[0]), V(rk)), b.At(V(rk), V(iv[1]))), rk)
	})
	return a, b, c
}

// GEMMComputeDecl declares the plain GEMM of Listing 3 lines 5-7 over
// uint64 words: C[i,j] = sum_k(A[i,k] * B[k,j]). The code generator does
// not specialize it (use the interpreter); it exists so examples and tests
// can demonstrate that the EC declaration differs from GEMM only in the
// reducer and the inner operator — the paper's central observation.
func GEMMComputeDecl(m, k, n int) (a, b, c *Tensor) {
	a = Placeholder("A", Word64, m, k)
	b = Placeholder("B", Word64, k, n)
	rk := ReduceAxis("k", k)
	c = Compute("C", []int{m, n}, Word64, func(iv []*IterVar) Expr {
		return SumReducer.Reduce(Mul(a.At(V(iv[0]), V(rk)), b.At(V(rk), V(iv[1]))), rk)
	})
	return a, b, c
}

// matchEC verifies the compute op is the xor/and GEMM pattern and returns
// the operand tensors and the reduction axis.
func matchEC(op *ComputeOp) (a, b *Tensor, rk *IterVar, err error) {
	if len(op.Axes) != 2 {
		return nil, nil, nil, fmt.Errorf("%w: want 2 spatial axes, have %d", ErrUnsupported, len(op.Axes))
	}
	red, ok := op.Body.(*ReduceExpr)
	if !ok || red.Reducer != XorReducer {
		return nil, nil, nil, fmt.Errorf("%w: body is not an xor reduction", ErrUnsupported)
	}
	bin, ok := red.Body.(*BinExpr)
	if !ok || bin.Op != OpAnd {
		return nil, nil, nil, fmt.Errorf("%w: reduction body is not an AND", ErrUnsupported)
	}
	i, j, k := op.Axes[0], op.Axes[1], red.Axis

	classify := func(e Expr) (*Tensor, bool, error) {
		ld, ok := e.(*LoadExpr)
		if !ok || len(ld.Idx) != 2 {
			return nil, false, fmt.Errorf("%w: AND operand is not a 2-d load", ErrUnsupported)
		}
		v0, ok0 := ld.Idx[0].(*VarExpr)
		v1, ok1 := ld.Idx[1].(*VarExpr)
		if !ok0 || !ok1 {
			return nil, false, fmt.Errorf("%w: load indices must be plain variables", ErrUnsupported)
		}
		switch {
		case v0.IV == i && v1.IV == k:
			return ld.T, true, nil // generator-side load A[i,k]
		case v0.IV == k && v1.IV == j:
			return ld.T, false, nil // data-side load B[k,j]
		default:
			return nil, false, fmt.Errorf("%w: load index pattern not recognized", ErrUnsupported)
		}
	}
	tL, isGenL, err := classify(bin.L)
	if err != nil {
		return nil, nil, nil, err
	}
	tR, isGenR, err := classify(bin.R)
	if err != nil {
		return nil, nil, nil, err
	}
	if isGenL == isGenR {
		return nil, nil, nil, fmt.Errorf("%w: need one generator and one data operand", ErrUnsupported)
	}
	if isGenL {
		a, b = tL, tR
	} else {
		a, b = tR, tL
	}
	if a.DType != BitMask {
		return nil, nil, nil, fmt.Errorf("%w: generator operand must be bitmask, is %s", ErrUnsupported, a.DType)
	}
	if b.DType != Word64 {
		return nil, nil, nil, fmt.Errorf("%w: data operand must be word64, is %s", ErrUnsupported, b.DType)
	}
	return a, b, k, nil
}

// Build specializes the scheduled computation into an executable kernel,
// mirroring tvm.build. The schedule's loop structure determines the
// kernel's configuration:
//
//   - the innermost leaf must be a Vectorized axis derived from the output
//     column axis j; if j was split, the inner part's extent is the
//     word-tile (cache blocking) size, otherwise the whole row is one tile;
//   - splitting the reduction axis k and Unrolling the inner part fuses
//     that many XOR sources per pass (reduction grouping);
//   - a Parallel annotation on a row-derived or column-outer-derived axis
//     selects multicore execution across rows or tiles;
//   - the relative order of the row axis and the column-outer axis picks
//     the serial traversal order.
func Build(s *Schedule) (*Kernel, error) {
	a, b, rk, err := matchEC(s.op)
	if err != nil {
		return nil, err
	}
	i, j := s.op.Axes[0], s.op.Axes[1]
	m, kExt, n := s.op.Out.Shape[0], rk.Extent, s.op.Out.Shape[1]

	cfg := KernelConfig{M: m, K: kExt, N: n, BlockWords: n, Fanin: 1, Workers: 1, RowsOuter: true, Parallel: ParallelNone}

	// Classify leaves by their root axis.
	var jLeaves, kLeaves, iLeaves []*IterVar
	for _, l := range s.leaf {
		switch s.rootOf(l) {
		case i:
			iLeaves = append(iLeaves, l)
		case j:
			jLeaves = append(jLeaves, l)
		case rk:
			kLeaves = append(kLeaves, l)
		default:
			return nil, fmt.Errorf("%w: leaf %s has unknown root", ErrUnsupported, l.Name)
		}
	}

	// Word axis: the innermost spatial leaf must be vectorized and j-derived.
	var last *IterVar
	for _, l := range s.leaf {
		if l.Kind == Spatial {
			last = l
		}
	}
	if last == nil || s.rootOf(last) != j || s.kinds[last] != Vectorized {
		return nil, fmt.Errorf("%w: innermost spatial axis must be the vectorized word axis", ErrUnsupported)
	}
	switch len(jLeaves) {
	case 1:
		cfg.BlockWords = n
	case 2:
		cfg.BlockWords = jLeaves[1].Extent
	default:
		return nil, fmt.Errorf("%w: column axis split more than once", ErrUnsupported)
	}

	// Reduction grouping.
	switch len(kLeaves) {
	case 1:
		cfg.Fanin = 1
	case 2:
		if s.kinds[kLeaves[1]] == Unrolled {
			f := kLeaves[1].Extent
			if f != 2 && f != 4 && f != 8 {
				return nil, fmt.Errorf("%w: reduction group %d not in {2,4,8}", ErrUnsupported, f)
			}
			cfg.Fanin = f
		}
	default:
		return nil, fmt.Errorf("%w: reduction axis split more than once", ErrUnsupported)
	}

	// Parallelism.
	for _, l := range s.leaf {
		if s.kinds[l] != ParallelFor {
			continue
		}
		if cfg.Parallel != ParallelNone {
			return nil, fmt.Errorf("%w: multiple parallel axes", ErrUnsupported)
		}
		switch {
		case s.rootOf(l) == i:
			cfg.Parallel = ParallelRows
		case s.rootOf(l) == j && len(jLeaves) == 2 && l == jLeaves[0]:
			cfg.Parallel = ParallelBlocks
		default:
			return nil, fmt.Errorf("%w: parallel axis must be rows or the outer column tile", ErrUnsupported)
		}
		cfg.Workers = runtime.GOMAXPROCS(0)
	}

	// Traversal order: position of the first i leaf vs first j leaf.
	if len(iLeaves) > 0 && len(jLeaves) > 0 {
		cfg.RowsOuter = s.leafIndex(iLeaves[0]) < s.leafIndex(jLeaves[0])
	}
	cfg.Staged = s.staged

	return &Kernel{cfg: cfg, a: a, b: b, c: s.op.Out}, nil
}

// SetWorkers overrides the goroutine count used when the kernel's schedule
// requested parallelism. It returns the kernel for chaining.
func (k *Kernel) SetWorkers(n int) *Kernel {
	if n > 0 {
		k.cfg.Workers = n
	}
	return k
}
