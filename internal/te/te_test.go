package te

import (
	"math/rand"
	"strings"
	"testing"
)

// naiveEC computes the xor/and GEMM directly, as the semantics oracle.
func naiveEC(a []bool, b []uint64, m, k, n int) []uint64 {
	c := make([]uint64, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			if !a[i*k+kk] {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] ^= b[kk*n+j]
			}
		}
	}
	return c
}

func makeECBindings(rng *rand.Rand, a, b, c *Tensor, m, k, n int) (Bindings, []bool, []uint64) {
	abits := make([]bool, m*k)
	for i := range abits {
		abits[i] = rng.Intn(2) == 1
	}
	bw := make([]uint64, k*n)
	for i := range bw {
		bw[i] = rng.Uint64()
	}
	ab := NewBuffer(a)
	if err := PackMask(ab, m, k, func(i, j int) bool { return abits[i*k+j] }); err != nil {
		panic(err)
	}
	bb := NewBuffer(b)
	for i, w := range bw {
		bb.SetWord(i, w)
	}
	return Bindings{a: ab, b: bb, c: NewBuffer(c)}, abits, bw
}

func checkC(t *testing.T, label string, bind Bindings, c *Tensor, want []uint64) {
	t.Helper()
	cb := bind[c]
	for i, w := range want {
		if cb.Word(i) != w {
			t.Fatalf("%s: C[%d]=%#x want %#x", label, i, cb.Word(i), w)
		}
	}
}

func TestNaiveScheduleInterpretsCorrectly(t *testing.T) {
	m, k, n := 5, 7, 9
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	checkC(t, "naive", bind, c, naiveEC(abits, bw, m, k, n))
}

func TestGEMMInterpreted(t *testing.T) {
	m, k, n := 3, 4, 5
	a, b, c := GEMMComputeDecl(m, k, n)
	s := CreateSchedule(c)
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	aw := make([]uint64, m*k)
	bw := make([]uint64, k*n)
	for i := range aw {
		aw[i] = uint64(rng.Intn(1000))
	}
	for i := range bw {
		bw[i] = uint64(rng.Intn(1000))
	}
	ab, bb := NewBuffer(a), NewBuffer(b)
	for i, w := range aw {
		ab.SetWord(i, w)
	}
	for i, w := range bw {
		bb.SetWord(i, w)
	}
	bind := Bindings{a: ab, b: bb, c: NewBuffer(c)}
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want uint64
			for kk := 0; kk < k; kk++ {
				want += aw[i*k+kk] * bw[kk*n+j]
			}
			if got := bind[c].Word(i*n + j); got != want {
				t.Fatalf("GEMM C[%d,%d]=%d want %d", i, j, got, want)
			}
		}
	}
	// GEMM is not specialized by the codegen.
	if _, err := Build(s); err == nil {
		t.Error("Build should reject GEMM")
	}
}

// applyRandomSchedule mutates the schedule with random legal primitives and
// reports whether the result should still be Build-able.
func applyRandomSchedule(t *testing.T, rng *rand.Rand, s *Schedule, m, k, n int) {
	t.Helper()
	axes := s.Leaf() // i, j, k
	i, j, rk := axes[0], axes[1], axes[2]

	var jo, ji *IterVar
	if n%2 == 0 && rng.Intn(2) == 1 {
		factors := divisorsOf(n)
		f := factors[rng.Intn(len(factors))]
		var err error
		jo, ji, err = s.Split(j, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Vectorize(ji); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := s.Vectorize(j); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 1 {
		for _, f := range []int{8, 4, 2} {
			if k%f == 0 {
				_, ki, err := s.Split(rk, f)
				if err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 1 {
					if err := s.Unroll(ki); err != nil {
						t.Fatal(err)
					}
				}
				break
			}
		}
	}
	if jo != nil && rng.Intn(2) == 1 {
		// Blocks-outer order.
		if err := s.Reorder(jo, i); err != nil {
			t.Fatal(err)
		}
	}
	switch rng.Intn(3) {
	case 0:
		if err := s.Parallel(i); err != nil {
			t.Fatal(err)
		}
	case 1:
		if jo != nil {
			if err := s.Parallel(jo); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func divisorsOf(n int) []int {
	var d []int
	for f := 1; f <= n; f++ {
		if n%f == 0 {
			d = append(d, f)
		}
	}
	return d
}

// TestScheduledInterpreterMatchesNaive drives random schedules through
// lowering and interpretation: schedules must never change results.
func TestScheduledInterpreterMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 2+rng.Intn(6), 2+rng.Intn(8), 4*(1+rng.Intn(6))
		a, b, c := ECComputeDecl(m, k, n)
		s := CreateSchedule(c)
		applyRandomSchedule(t, rng, s, m, k, n)
		mod, err := Lower(s)
		if err != nil {
			t.Fatal(err)
		}
		bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
		if err := Interpret(mod, bind); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, mod.Print())
		}
		checkC(t, "scheduled", bind, c, naiveEC(abits, bw, m, k, n))
	}
}

// TestKernelMatchesInterpreter is the codegen's core property test: for
// random schedules the compiled kernel and the interpreter must agree.
func TestKernelMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(12), 4*(1+rng.Intn(8))
		a, b, c := ECComputeDecl(m, k, n)
		s := CreateSchedule(c)
		applyRandomSchedule(t, rng, s, m, k, n)

		kern, err := Build(s)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
		if err := kern.Exec(bind); err != nil {
			t.Fatalf("trial %d: exec: %v", trial, err)
		}
		checkC(t, kern.Config().String(), bind, c, naiveEC(abits, bw, m, k, n))
	}
}

func TestKernelConfigExtraction(t *testing.T) {
	m, k, n := 16, 64, 1024
	_, _, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	i, j, rk := axes[0], axes[1], axes[2]
	jo, ji, err := s.Split(j, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(ji); err != nil {
		t.Fatal(err)
	}
	_, ki, err := s.Split(rk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unroll(ki); err != nil {
		t.Fatal(err)
	}
	if err := s.Reorder(jo, i); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(jo); err != nil {
		t.Fatal(err)
	}
	kern, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kern.Config()
	if cfg.BlockWords != 256 || cfg.Fanin != 4 || cfg.RowsOuter || cfg.Parallel != ParallelBlocks {
		t.Fatalf("unexpected config %+v", cfg)
	}
	kern.SetWorkers(3)
	if kern.Config().Workers != 3 {
		t.Error("SetWorkers didn't apply")
	}
	kern.SetWorkers(0)
	if kern.Config().Workers != 3 {
		t.Error("SetWorkers(0) should be ignored")
	}
	if cfg.String() == "" {
		t.Error("config string empty")
	}
}

func TestBuildRejectsNonVectorized(t *testing.T) {
	_, _, c := ECComputeDecl(4, 4, 8)
	s := CreateSchedule(c)
	if _, err := Build(s); err == nil {
		t.Error("Build should require a vectorized innermost axis")
	}
}

func TestScheduleErrors(t *testing.T) {
	_, _, c := ECComputeDecl(4, 6, 8)
	s := CreateSchedule(c)
	axes := s.Leaf()
	i, j, rk := axes[0], axes[1], axes[2]

	if _, _, err := s.Split(j, 3); err == nil {
		t.Error("non-dividing split accepted")
	}
	if _, _, err := s.Split(&IterVar{Name: "x", Extent: 4}, 2); err == nil {
		t.Error("split of non-leaf accepted")
	}
	if err := s.Vectorize(rk); err == nil {
		t.Error("vectorizing reduction accepted")
	}
	if err := s.Vectorize(i); err == nil {
		t.Error("vectorizing non-innermost accepted")
	}
	if err := s.Parallel(rk); err == nil {
		t.Error("parallel reduction accepted")
	}
	if err := s.Reorder(i, i); err == nil {
		t.Error("duplicate reorder accepted")
	}
	if err := s.Reorder(&IterVar{Name: "x", Extent: 4}); err == nil {
		t.Error("reorder of non-leaf accepted")
	}
	if err := s.Unroll(&IterVar{Name: "x", Extent: 4}); err == nil {
		t.Error("unroll of non-leaf accepted")
	}
	if err := s.Vectorize(j); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(j); err == nil {
		t.Error("conflicting annotation accepted")
	}
	if err := s.Reorder(); err != nil {
		t.Error("empty reorder should be a no-op")
	}
}

func TestTile(t *testing.T) {
	m, k, n := 8, 4, 16
	a, b, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	axes := s.Leaf()
	io, jo, ii, ji, err := s.Tile(axes[0], axes[1], 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaf := s.Leaf()
	// Expect order io, jo, ii, ji, k.
	want := []*IterVar{io, jo, ii, ji, axes[2]}
	for n, iv := range want {
		if leaf[n] != iv {
			t.Fatalf("leaf[%d]=%s want %s", n, leaf[n].Name, iv.Name)
		}
	}
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	bind, abits, bw := makeECBindings(rng, a, b, c, m, k, n)
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	checkC(t, "tiled", bind, c, naiveEC(abits, bw, m, k, n))
}

func TestPrintShowsAnnotations(t *testing.T) {
	_, _, c := ECComputeDecl(4, 4, 16)
	s := CreateSchedule(c)
	axes := s.Leaf()
	if err := s.Vectorize(axes[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(axes[0]); err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	out := mod.Print()
	for _, want := range []string{"vectorize", "parallel", "for i in 0..4", "C[i, j]"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed IR missing %q:\n%s", want, out)
		}
	}
}

func TestBindingsValidation(t *testing.T) {
	a, b, c := ECComputeDecl(2, 2, 8)
	s := CreateSchedule(c)
	axes := s.Leaf()
	if err := s.Vectorize(axes[1]); err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	bind := Bindings{a: NewBuffer(a), b: NewBuffer(b)} // c missing
	if err := Interpret(mod, bind); err == nil {
		t.Error("interpreter accepted missing binding")
	}
	if err := kern.Exec(bind); err == nil {
		t.Error("kernel accepted missing binding")
	}
	bind[c] = make(Buffer, 8) // wrong size
	if err := kern.Exec(bind); err == nil {
		t.Error("kernel accepted wrong-size binding")
	}
	// Invalid mask word.
	bind[c] = NewBuffer(c)
	bind[a].SetWord(0, 42)
	if err := kern.Exec(bind); err == nil {
		t.Error("kernel accepted invalid bitmask word")
	}
}

func TestPackMask(t *testing.T) {
	a := Placeholder("A", BitMask, 2, 3)
	buf := NewBuffer(a)
	if err := PackMask(buf, 2, 3, func(i, j int) bool { return i == j }); err != nil {
		t.Fatal(err)
	}
	if buf.Word(0) != ^uint64(0) || buf.Word(1) != 0 || buf.Word(4) != ^uint64(0) {
		t.Error("PackMask content wrong")
	}
	if err := PackMask(buf[:8], 2, 3, func(i, j int) bool { return false }); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDeclValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Placeholder("x", Word64) },
		func() { Placeholder("x", Word64, 0) },
		func() { Compute("x", []int{2}, Word64, func([]*IterVar) Expr { return nil }) },
		func() { ReduceAxis("k", 0) },
		func() { CreateSchedule(Placeholder("x", Word64, 2)) },
		func() { Placeholder("A", Word64, 2, 2).At(V(&IterVar{Name: "i"})) },
		func() { SumReducer.Reduce(&ConstExpr{}, &IterVar{Name: "i", Kind: Spatial}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestExprStrings(t *testing.T) {
	a, _, _ := ECComputeDecl(2, 2, 2)
	iv := &IterVar{Name: "i", Extent: 2}
	e := Xor(And(a.At(V(iv), &ConstExpr{V: 1}), &ConstExpr{V: 7}), Add(Mul(V(iv), V(iv)), V(iv)))
	s := e.String()
	for _, want := range []string{"A[i, 1]", "&", "^", "*", "+"} {
		if !strings.Contains(s, want) {
			t.Errorf("expr string %q missing %q", s, want)
		}
	}
	ae := &AffineExpr{A: V(iv), Scale: 4, B: &ConstExpr{V: 2}}
	if !strings.Contains(ae.String(), "*4") {
		t.Error("affine string wrong")
	}
	if Word64.String() != "word64" || BitMask.String() != "bitmask" {
		t.Error("dtype strings wrong")
	}
	for _, k := range []ForKind{Serial, Unrolled, Vectorized, ParallelFor} {
		if k.String() == "" {
			t.Error("forkind string empty")
		}
	}
}

// TestStagedKernelMatchesUnstaged: cache_write is a pure performance
// transform — staged and unstaged kernels must agree bit for bit on random
// schedules.
func TestStagedKernelMatchesUnstaged(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(10), 4*(1+rng.Intn(8))
		build := func(staged bool) (*Kernel, *Tensor, *Tensor, *Tensor) {
			a, b, c := ECComputeDecl(m, k, n)
			s := CreateSchedule(c)
			axes := s.Leaf()
			j := axes[1]
			word := j
			if n%4 == 0 && rng.Intn(2) == 1 {
				_, ji, err := s.Split(j, 4)
				if err != nil {
					t.Fatal(err)
				}
				word = ji
			}
			if err := s.Vectorize(word); err != nil {
				t.Fatal(err)
			}
			if staged {
				s.CacheWrite()
				if !s.Staged() {
					t.Fatal("Staged() false after CacheWrite")
				}
			}
			kern, err := Build(s)
			if err != nil {
				t.Fatal(err)
			}
			if kern.Config().Staged != staged {
				t.Fatalf("config staged=%v want %v", kern.Config().Staged, staged)
			}
			return kern, a, b, c
		}
		// Build both over the same RNG draw sequence: consume the split coin
		// once by cloning the rng state via a fixed decision per trial.
		splitCoin := rng.Int63()
		mkRng := func() *rand.Rand { return rand.New(rand.NewSource(splitCoin)) }
		rng = mkRng()
		k1, a1, b1, c1 := build(false)
		rng = mkRng()
		k2, a2, b2, c2 := build(true)

		dataRng := rand.New(rand.NewSource(int64(trial)))
		bind1, abits, bw := makeECBindings(dataRng, a1, b1, c1, m, k, n)
		if err := k1.Exec(bind1); err != nil {
			t.Fatal(err)
		}
		bind2 := Bindings{a2: bind1[a1], b2: bind1[b1], c2: NewBuffer(c2)}
		if err := k2.Exec(bind2); err != nil {
			t.Fatal(err)
		}
		want := naiveEC(abits, bw, m, k, n)
		for e, wv := range want {
			if bind1[c1].Word(e) != wv || bind2[c2].Word(e) != wv {
				t.Fatalf("trial %d: staged/unstaged mismatch at %d", trial, e)
			}
		}
		rng = rand.New(rand.NewSource(int64(trial) + 1000))
	}
}

func TestScheduleString(t *testing.T) {
	_, _, c := ECComputeDecl(4, 8, 64)
	s := CreateSchedule(c)
	axes := s.Leaf()
	jo, ji, err := s.Split(axes[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = jo
	if err := s.Vectorize(ji); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(axes[0]); err != nil {
		t.Fatal(err)
	}
	str := s.String()
	for _, want := range []string{"i[4]:parallel", "j.o[4]", "j.i[16]:vectorize", "k[8]", " -> "} {
		if !strings.Contains(str, want) {
			t.Errorf("schedule string %q missing %q", str, want)
		}
	}
}

func TestInputs(t *testing.T) {
	a, b, c := ECComputeDecl(2, 3, 4)
	ins := c.Inputs()
	if len(ins) != 2 {
		t.Fatalf("Inputs=%d want 2", len(ins))
	}
	seen := map[*Tensor]bool{ins[0]: true, ins[1]: true}
	if !seen[a] || !seen[b] {
		t.Error("Inputs missing a tensor")
	}
	if a.Inputs() != nil {
		t.Error("placeholder should have no inputs")
	}
}
