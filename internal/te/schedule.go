package te

import (
	"fmt"
)

// ForKind annotates how a loop should be realized, mirroring TVM's loop
// annotations. The interpreter treats all kinds identically (annotations
// never change semantics); the code generator maps them onto kernel
// structure.
type ForKind int

const (
	// Serial is an ordinary loop.
	Serial ForKind = iota
	// Unrolled requests unrolling; on the reduction axis the code generator
	// realizes it as multi-source XOR fusion.
	Unrolled
	// Vectorized requests lane-parallel execution; the innermost vectorized
	// axis becomes the uint64-word axis in generated kernels.
	Vectorized
	// ParallelFor requests multicore execution of the loop's iterations.
	ParallelFor
)

func (k ForKind) String() string {
	switch k {
	case Serial:
		return "serial"
	case Unrolled:
		return "unroll"
	case Vectorized:
		return "vectorize"
	case ParallelFor:
		return "parallel"
	default:
		return fmt.Sprintf("forkind(%d)", int(k))
	}
}

// Schedule is a set of loop transformations over one compute stage,
// mirroring tvm.te.create_schedule for a single-op graph. A schedule owns
// the loop order (leaf axes), the split tree and per-axis annotations.
type Schedule struct {
	out    *Tensor
	op     *ComputeOp
	leaf   []*IterVar               // current loop order, outermost first
	kinds  map[*IterVar]ForKind     // annotation per leaf
	split  map[*IterVar][2]*IterVar // split var -> (outer, inner)
	factor map[*IterVar]int         // split var -> inner factor
	parent map[*IterVar]*IterVar    // leaf/derived var -> var it was split from
	fused  map[*IterVar]Expr        // fused-away var -> expression over the fused var
	staged bool                     // cache_write: accumulate tiles in a local buffer
}

// CreateSchedule starts a schedule for a computed tensor. The initial loop
// order is the spatial axes followed by the reduction axis, all serial —
// exactly the naive loop nest of Listings 1 and 2.
func CreateSchedule(t *Tensor) *Schedule {
	if t.Op == nil {
		panic(fmt.Sprintf("te: cannot schedule placeholder %q", t.Name))
	}
	s := &Schedule{
		out:    t,
		op:     t.Op,
		kinds:  map[*IterVar]ForKind{},
		split:  map[*IterVar][2]*IterVar{},
		factor: map[*IterVar]int{},
		parent: map[*IterVar]*IterVar{},
		fused:  map[*IterVar]Expr{},
	}
	s.leaf = append(s.leaf, t.Op.Axes...)
	if r := findReduce(t.Op.Body); r != nil {
		s.leaf = append(s.leaf, r.Axis)
	}
	return s
}

// findReduce returns the single top-level reduction in the body, if any.
func findReduce(e Expr) *ReduceExpr {
	if r, ok := e.(*ReduceExpr); ok {
		return r
	}
	return nil
}

// Output returns the tensor being scheduled.
func (s *Schedule) Output() *Tensor { return s.out }

// Leaf returns the current loop order, outermost first.
func (s *Schedule) Leaf() []*IterVar {
	return append([]*IterVar(nil), s.leaf...)
}

// Kind returns the annotation of a leaf axis.
func (s *Schedule) Kind(iv *IterVar) ForKind { return s.kinds[iv] }

func (s *Schedule) leafIndex(iv *IterVar) int {
	for i, v := range s.leaf {
		if v == iv {
			return i
		}
	}
	return -1
}

// Split divides leaf axis iv into an (outer, inner) pair with the given
// inner factor, which must evenly divide the axis extent (shapes are static
// so this is checked immediately). Mirrors tvm Schedule[op].split.
func (s *Schedule) Split(iv *IterVar, factor int) (outer, inner *IterVar, err error) {
	pos := s.leafIndex(iv)
	if pos < 0 {
		return nil, nil, fmt.Errorf("te: %s is not a leaf axis", iv.Name)
	}
	if factor <= 0 || iv.Extent%factor != 0 {
		return nil, nil, fmt.Errorf("te: factor %d does not divide extent %d of %s", factor, iv.Extent, iv.Name)
	}
	outer = &IterVar{Name: iv.Name + ".o", Extent: iv.Extent / factor, Kind: iv.Kind}
	inner = &IterVar{Name: iv.Name + ".i", Extent: factor, Kind: iv.Kind}
	s.split[iv] = [2]*IterVar{outer, inner}
	s.factor[iv] = factor
	s.parent[outer] = iv
	s.parent[inner] = iv
	nl := make([]*IterVar, 0, len(s.leaf)+1)
	nl = append(nl, s.leaf[:pos]...)
	nl = append(nl, outer, inner)
	nl = append(nl, s.leaf[pos+1:]...)
	s.leaf = nl
	delete(s.kinds, iv)
	return outer, inner, nil
}

// Fuse merges two adjacent leaf axes (outer immediately followed by inner)
// into a single axis of extent outer.Extent * inner.Extent, mirroring tvm
// Schedule[op].fuse. Both axes must have the same iteration kind. The fused
// axis supports all annotations; the code generator does not specialize
// fused schedules (interpretation still works), matching how TVM falls back
// for layouts its templates do not cover.
func (s *Schedule) Fuse(outer, inner *IterVar) (*IterVar, error) {
	po := s.leafIndex(outer)
	pi := s.leafIndex(inner)
	if po < 0 || pi < 0 {
		return nil, fmt.Errorf("te: fuse operands must be leaf axes")
	}
	if pi != po+1 {
		return nil, fmt.Errorf("te: fuse requires adjacent axes (%s at %d, %s at %d)", outer.Name, po, inner.Name, pi)
	}
	if outer.Kind != inner.Kind {
		return nil, fmt.Errorf("te: cannot fuse %s axis %s with %s axis %s",
			kindName(outer.Kind), outer.Name, kindName(inner.Kind), inner.Name)
	}
	f := &IterVar{
		Name:   outer.Name + "." + inner.Name + ".fused",
		Extent: outer.Extent * inner.Extent,
		Kind:   outer.Kind,
	}
	s.fused[outer] = &DivExpr{A: V(f), Div: inner.Extent}
	s.fused[inner] = &ModExpr{A: V(f), Mod: inner.Extent}
	nl := make([]*IterVar, 0, len(s.leaf)-1)
	nl = append(nl, s.leaf[:po]...)
	nl = append(nl, f)
	nl = append(nl, s.leaf[pi+1:]...)
	s.leaf = nl
	delete(s.kinds, outer)
	delete(s.kinds, inner)
	return f, nil
}

func kindName(k IterKind) string {
	if k == Reduction {
		return "reduction"
	}
	return "spatial"
}

// Tile is the common split-split-reorder idiom over two spatial axes,
// mirroring tvm Schedule[op].tile.
func (s *Schedule) Tile(x, y *IterVar, fx, fy int) (xo, yo, xi, yi *IterVar, err error) {
	xo, xi, err = s.Split(x, fx)
	if err != nil {
		return
	}
	yo, yi, err = s.Split(y, fy)
	if err != nil {
		return
	}
	err = s.Reorder(xo, yo, xi, yi)
	return
}

// Reorder rearranges the listed leaf axes into the given order, keeping
// them in the positions the listed set currently occupies (TVM's partial
// reorder semantics). Every listed axis must be a distinct current leaf.
func (s *Schedule) Reorder(order ...*IterVar) error {
	if len(order) == 0 {
		return nil
	}
	seen := map[*IterVar]bool{}
	positions := make([]int, 0, len(order))
	for _, iv := range order {
		if seen[iv] {
			return fmt.Errorf("te: axis %s listed twice in reorder", iv.Name)
		}
		seen[iv] = true
		pos := s.leafIndex(iv)
		if pos < 0 {
			return fmt.Errorf("te: %s is not a leaf axis", iv.Name)
		}
		positions = append(positions, pos)
	}
	// Sort the occupied positions, then place the requested order into them.
	for i := 1; i < len(positions); i++ {
		for j := i; j > 0 && positions[j-1] > positions[j]; j-- {
			positions[j-1], positions[j] = positions[j], positions[j-1]
		}
	}
	for n, iv := range order {
		s.leaf[positions[n]] = iv
	}
	return nil
}

func (s *Schedule) annotate(iv *IterVar, k ForKind) error {
	if s.leafIndex(iv) < 0 {
		return fmt.Errorf("te: %s is not a leaf axis", iv.Name)
	}
	if cur, ok := s.kinds[iv]; ok && cur != k {
		return fmt.Errorf("te: %s already annotated %s", iv.Name, cur)
	}
	s.kinds[iv] = k
	return nil
}

// Unroll requests unrolling of a leaf axis.
func (s *Schedule) Unroll(iv *IterVar) error { return s.annotate(iv, Unrolled) }

// CacheWrite requests that each output tile be accumulated in a compiler-
// managed local buffer and written back once, mirroring tvm's
// s.cache_write(C, "local"). Semantics are unchanged (the interpreter
// ignores it); generated kernels keep the accumulator cache-resident
// instead of re-reading the destination on every reduction pass, which
// pays off when the destination tile does not stay in cache between passes.
func (s *Schedule) CacheWrite() {
	s.staged = true
}

// Staged reports whether CacheWrite was applied.
func (s *Schedule) Staged() bool { return s.staged }

// Vectorize requests lane-parallel execution of a leaf axis. The axis must
// be spatial and innermost among the spatial leaves (reduction axes may sit
// inside it), matching TVM's requirement that vectorized stores be
// contiguous while reductions accumulate lanewise.
func (s *Schedule) Vectorize(iv *IterVar) error {
	if iv.Kind != Spatial {
		return fmt.Errorf("te: cannot vectorize reduction axis %s", iv.Name)
	}
	pos := s.leafIndex(iv)
	if pos < 0 {
		return fmt.Errorf("te: %s is not a leaf axis", iv.Name)
	}
	for _, l := range s.leaf[pos+1:] {
		if l.Kind == Spatial {
			return fmt.Errorf("te: vectorized axis %s must be the innermost spatial axis (found %s inside)", iv.Name, l.Name)
		}
	}
	return s.annotate(iv, Vectorized)
}

// Parallel requests multicore execution of a leaf axis. Only spatial axes
// may run in parallel (parallel reduction would race on the accumulator).
func (s *Schedule) Parallel(iv *IterVar) error {
	if iv.Kind != Spatial {
		return fmt.Errorf("te: cannot parallelize reduction axis %s", iv.Name)
	}
	return s.annotate(iv, ParallelFor)
}

// String renders the schedule as its loop order with annotations, e.g.
// "j.o[8] -> i[32] -> k.o[10] -> k.i[8]:unroll -> j.i[256]:vectorize".
func (s *Schedule) String() string {
	out := ""
	for n, l := range s.leaf {
		if n > 0 {
			out += " -> "
		}
		out += fmt.Sprintf("%s[%d]", l.Name, l.Extent)
		if k, ok := s.kinds[l]; ok && k != Serial {
			out += ":" + k.String()
		}
	}
	return out
}

// rootOf follows the parent chain to the original compute/reduce axis a
// leaf was derived from.
func (s *Schedule) rootOf(iv *IterVar) *IterVar {
	for {
		p, ok := s.parent[iv]
		if !ok {
			return iv
		}
		iv = p
	}
}

// resolve returns the expression reconstructing a variable purely in terms
// of current leaf variables, expanding through any chain of splits and
// fusions applied after the variable was created.
func (s *Schedule) resolve(v *IterVar) Expr {
	if e, ok := s.fused[v]; ok {
		return s.resolveExpr(e)
	}
	if pair, ok := s.split[v]; ok {
		return &AffineExpr{A: s.resolve(pair[0]), Scale: s.factor[v], B: s.resolve(pair[1])}
	}
	return V(v)
}

// resolveExpr expands every variable reference inside e via resolve.
func (s *Schedule) resolveExpr(e Expr) Expr {
	switch x := e.(type) {
	case *VarExpr:
		if _, split := s.split[x.IV]; !split {
			if _, fz := s.fused[x.IV]; !fz {
				return x
			}
		}
		return s.resolve(x.IV)
	case *ConstExpr:
		return x
	case *AffineExpr:
		return &AffineExpr{A: s.resolveExpr(x.A), Scale: x.Scale, B: s.resolveExpr(x.B)}
	case *DivExpr:
		return &DivExpr{A: s.resolveExpr(x.A), Div: x.Div}
	case *ModExpr:
		return &ModExpr{A: s.resolveExpr(x.A), Mod: x.Mod}
	default:
		panic(fmt.Sprintf("te: cannot resolve expression %T", e))
	}
}
