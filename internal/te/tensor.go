package te

import (
	"encoding/binary"
	"fmt"
)

// Tensor is a named, statically shaped operand. A tensor is either a
// placeholder (an input bound at execution time) or the output of a
// ComputeOp.
type Tensor struct {
	Name  string
	Shape []int
	DType DType
	Op    *ComputeOp // nil for placeholders
}

// Placeholder declares an input tensor, mirroring tvm.te.placeholder.
func Placeholder(name string, dtype DType, shape ...int) *Tensor {
	checkShape(name, shape)
	return &Tensor{Name: name, Shape: shape, DType: dtype}
}

func checkShape(name string, shape []int) {
	if len(shape) == 0 {
		panic(fmt.Sprintf("te: tensor %q has empty shape", name))
	}
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("te: tensor %q has non-positive dimension %d", name, d))
		}
	}
}

// Elems returns the number of elements.
func (t *Tensor) Elems() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Bytes returns the buffer size in bytes a binding for this tensor needs.
func (t *Tensor) Bytes() int { return t.Elems() * t.DType.ElemBytes() }

// At builds a load expression for this tensor at the given index
// expressions, one per dimension.
func (t *Tensor) At(idx ...Expr) Expr {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("te: tensor %q indexed with %d indices, has %d dims", t.Name, len(idx), len(t.Shape)))
	}
	return &LoadExpr{T: t, Idx: idx}
}

// ComputeOp defines an output tensor elementwise from an expression over
// its spatial axes (and any reduction axes inside the expression).
type ComputeOp struct {
	Out  *Tensor
	Axes []*IterVar // spatial axes, one per output dimension
	Body Expr
}

// Compute declares a computed tensor, mirroring tvm.te.compute: shape gives
// the output dimensions and f receives one spatial IterVar per dimension,
// returning the element expression. This is lines 6-7 / 11-12 of the
// paper's Listing 3.
func Compute(name string, shape []int, dtype DType, f func(iv []*IterVar) Expr) *Tensor {
	checkShape(name, shape)
	axes := make([]*IterVar, len(shape))
	axisNames := []string{"i", "j", "l", "m"}
	for d, ext := range shape {
		an := fmt.Sprintf("ax%d", d)
		if d < len(axisNames) {
			an = axisNames[d]
		}
		axes[d] = &IterVar{Name: an, Extent: ext, Kind: Spatial}
	}
	body := f(axes)
	if body == nil {
		panic(fmt.Sprintf("te: compute %q returned nil body", name))
	}
	out := &Tensor{Name: name, Shape: shape, DType: dtype}
	out.Op = &ComputeOp{Out: out, Axes: axes, Body: body}
	return out
}

// Buffer is an execution-time binding for a tensor: a byte slice holding
// the tensor's elements row-major as little-endian 8-byte words. Using raw
// bytes (rather than []uint64) lets erasure-coding callers pass data and
// parity stripes through with zero copies — the contiguous stripe of a
// (k, r, w) code, read as a (k*w) x planeWords row-major matrix, is exactly
// the GEMM's B operand (see internal/core).
type Buffer []byte

// NewBuffer allocates a zeroed buffer sized for t.
func NewBuffer(t *Tensor) Buffer { return make(Buffer, t.Bytes()) }

// Word returns element e (flat index) of the buffer.
func (b Buffer) Word(e int) uint64 {
	return binary.LittleEndian.Uint64(b[e*8:])
}

// SetWord stores element e (flat index).
func (b Buffer) SetWord(e int, v uint64) {
	binary.LittleEndian.PutUint64(b[e*8:], v)
}

// Bindings maps tensors to their buffers for one execution.
type Bindings map[*Tensor]Buffer

// bind validates that every placeholder and output in the program has a
// correctly sized buffer.
func (bn Bindings) check(tensors ...*Tensor) error {
	for _, t := range tensors {
		buf, ok := bn[t]
		if !ok {
			return fmt.Errorf("te: tensor %q not bound", t.Name)
		}
		if len(buf) != t.Bytes() {
			return fmt.Errorf("te: tensor %q bound to %d bytes, want %d", t.Name, len(buf), t.Bytes())
		}
	}
	return nil
}

// collectInputs returns the placeholder tensors the expression reads.
func collectInputs(e Expr, into map[*Tensor]bool) {
	switch x := e.(type) {
	case *LoadExpr:
		if x.T.Op == nil {
			into[x.T] = true
		}
		for _, ix := range x.Idx {
			collectInputs(ix, into)
		}
	case *BinExpr:
		collectInputs(x.L, into)
		collectInputs(x.R, into)
	case *ReduceExpr:
		collectInputs(x.Body, into)
	case *AffineExpr:
		collectInputs(x.A, into)
		collectInputs(x.B, into)
	}
}

// Inputs returns the placeholder tensors a computed tensor depends on, in
// unspecified order.
func (t *Tensor) Inputs() []*Tensor {
	if t.Op == nil {
		return nil
	}
	set := map[*Tensor]bool{}
	collectInputs(t.Op.Body, set)
	out := make([]*Tensor, 0, len(set))
	for in := range set {
		out = append(out, in)
	}
	return out
}
