package te

import (
	"strings"
	"testing"
)

// Error-path coverage for the interpreter: every malformed program must
// yield an error, never a panic or silent wrong answer.

func TestInterpreterErrorPaths(t *testing.T) {
	a := Placeholder("A", Word64, 2, 2)
	c := Compute("C", []int{2, 2}, Word64, func(iv []*IterVar) Expr {
		return a.At(V(iv[0]), V(iv[1]))
	})
	s := CreateSchedule(c)
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}

	// Unbound tensor.
	if err := Interpret(mod, Bindings{a: NewBuffer(a)}); err == nil {
		t.Error("missing output binding accepted")
	}
	// Wrong-size buffer.
	if err := Interpret(mod, Bindings{a: NewBuffer(a), c: make(Buffer, 8)}); err == nil {
		t.Error("wrong-size binding accepted")
	}
	// Healthy run for contrast.
	bind := Bindings{a: NewBuffer(a), c: NewBuffer(c)}
	bind[a].SetWord(3, 42)
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	if bind[c].Word(3) != 42 {
		t.Error("identity compute wrong")
	}
}

func TestInterpreterOutOfBoundsIndex(t *testing.T) {
	// Hand-build IR that indexes out of bounds; the interpreter must catch
	// it with a descriptive error instead of panicking.
	a := Placeholder("A", Word64, 2, 2)
	iv := &IterVar{Name: "i", Extent: 4, Kind: Spatial} // extent exceeds dim
	c := Placeholder("C", Word64, 4)
	body := &ForStmt{IV: iv, Body: &StoreStmt{
		T:   c,
		Idx: []Expr{V(iv)},
		Val: a.At(V(iv), &ConstExpr{V: 0}), // A[i, 0] with i up to 3: OOB at 2
	}}
	mod := &Module{Out: c, Inputs: []*Tensor{a}, Body: body}
	err := Interpret(mod, Bindings{a: NewBuffer(a), c: NewBuffer(c)})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err=%v, want out-of-bounds", err)
	}
}

func TestInterpreterUnboundVariable(t *testing.T) {
	a := Placeholder("A", Word64, 2)
	c := Placeholder("C", Word64, 2)
	ghost := &IterVar{Name: "ghost", Extent: 2}
	mod := &Module{Out: c, Inputs: []*Tensor{a}, Body: &StoreStmt{
		T:   c,
		Idx: []Expr{V(ghost)}, // never introduced by a loop
		Val: &ConstExpr{V: 1},
	}}
	err := Interpret(mod, Bindings{a: NewBuffer(a), c: NewBuffer(c)})
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("err=%v, want unbound-variable", err)
	}
}

func TestInterpreterWrongArity(t *testing.T) {
	a := Placeholder("A", Word64, 2, 2)
	c := Placeholder("C", Word64, 2)
	iv := &IterVar{Name: "i", Extent: 2, Kind: Spatial}
	mod := &Module{Out: c, Inputs: []*Tensor{a}, Body: &ForStmt{IV: iv, Body: &StoreStmt{
		T:   c,
		Idx: []Expr{V(iv)},
		Val: &LoadExpr{T: a, Idx: []Expr{V(iv)}}, // 1 index for a 2-d tensor
	}}}
	if err := Interpret(mod, Bindings{a: NewBuffer(a), c: NewBuffer(c)}); err == nil {
		t.Error("wrong load arity accepted")
	}
}

func TestInterpreterReduceNotLowered(t *testing.T) {
	// A raw ReduceExpr in value position must be rejected (lowering is
	// required to peel it).
	a := Placeholder("A", Word64, 2)
	c := Placeholder("C", Word64, 2)
	rk := ReduceAxis("k", 2)
	iv := &IterVar{Name: "i", Extent: 2, Kind: Spatial}
	mod := &Module{Out: c, Inputs: []*Tensor{a}, Body: &ForStmt{IV: iv, Body: &StoreStmt{
		T:   c,
		Idx: []Expr{V(iv)},
		Val: SumReducer.Reduce(a.At(V(rk)), rk),
	}}}
	if err := Interpret(mod, Bindings{a: NewBuffer(a), c: NewBuffer(c)}); err == nil {
		t.Error("unlowered reduce accepted")
	}
}
