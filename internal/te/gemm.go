package te

import (
	"encoding/binary"
	"fmt"
)

// This file adds a second code-generation template: the ordinary integer
// GEMM of the paper's Listing 3 lines 5-7 (sum of products over uint64
// words). It exists to demonstrate that the compiler machinery is not
// special-cased to erasure coding — the same schedules (tiling, traversal
// order, parallelism) drive both templates, which is the substance of the
// paper's §4.2 argument that EC piggybacks on GEMM infrastructure.

// GEMMKernel is a compiled executor for a scheduled word GEMM.
type GEMMKernel struct {
	cfg     KernelConfig
	a, b, c *Tensor
}

// Config returns the extracted specialization.
func (k *GEMMKernel) Config() KernelConfig { return k.cfg }

// SetWorkers overrides the goroutine count for parallel schedules.
func (k *GEMMKernel) SetWorkers(n int) *GEMMKernel {
	if n > 0 {
		k.cfg.Workers = n
	}
	return k
}

// matchGEMM verifies the compute op is the sum/mul GEMM pattern.
func matchGEMM(op *ComputeOp) (a, b *Tensor, rk *IterVar, err error) {
	if len(op.Axes) != 2 {
		return nil, nil, nil, fmt.Errorf("%w: want 2 spatial axes", ErrUnsupported)
	}
	red, ok := op.Body.(*ReduceExpr)
	if !ok || red.Reducer != SumReducer {
		return nil, nil, nil, fmt.Errorf("%w: body is not a sum reduction", ErrUnsupported)
	}
	bin, ok := red.Body.(*BinExpr)
	if !ok || bin.Op != OpMul {
		return nil, nil, nil, fmt.Errorf("%w: reduction body is not a product", ErrUnsupported)
	}
	i, j, k := op.Axes[0], op.Axes[1], red.Axis
	classify := func(e Expr) (*Tensor, bool, error) {
		ld, ok := e.(*LoadExpr)
		if !ok || len(ld.Idx) != 2 {
			return nil, false, fmt.Errorf("%w: operand is not a 2-d load", ErrUnsupported)
		}
		v0, ok0 := ld.Idx[0].(*VarExpr)
		v1, ok1 := ld.Idx[1].(*VarExpr)
		if !ok0 || !ok1 {
			return nil, false, fmt.Errorf("%w: load indices must be variables", ErrUnsupported)
		}
		switch {
		case v0.IV == i && v1.IV == k:
			return ld.T, true, nil
		case v0.IV == k && v1.IV == j:
			return ld.T, false, nil
		default:
			return nil, false, fmt.Errorf("%w: index pattern not recognized", ErrUnsupported)
		}
	}
	tL, leftIsA, err := classify(bin.L)
	if err != nil {
		return nil, nil, nil, err
	}
	tR, rightIsA, err := classify(bin.R)
	if err != nil {
		return nil, nil, nil, err
	}
	if leftIsA == rightIsA {
		return nil, nil, nil, fmt.Errorf("%w: need one A-side and one B-side operand", ErrUnsupported)
	}
	if leftIsA {
		a, b = tL, tR
	} else {
		a, b = tR, tL
	}
	if a.DType != Word64 || b.DType != Word64 {
		return nil, nil, nil, fmt.Errorf("%w: GEMM operands must be word64", ErrUnsupported)
	}
	return a, b, k, nil
}

// BuildGEMM specializes a scheduled integer GEMM. The schedule grammar is
// the same as Build's, except reduction grouping (fanin) is ignored — the
// scalar accumulator already keeps the product chain in registers.
func BuildGEMM(s *Schedule) (*GEMMKernel, error) {
	a, b, rk := (*Tensor)(nil), (*Tensor)(nil), (*IterVar)(nil)
	var err error
	a, b, rk, err = matchGEMM(s.op)
	if err != nil {
		return nil, err
	}
	i, j := s.op.Axes[0], s.op.Axes[1]
	m, kExt, n := s.op.Out.Shape[0], rk.Extent, s.op.Out.Shape[1]
	cfg := KernelConfig{M: m, K: kExt, N: n, BlockWords: n, Fanin: 1, Workers: 1, RowsOuter: true}

	var jLeaves, iLeaves []*IterVar
	for _, l := range s.leaf {
		switch s.rootOf(l) {
		case i:
			iLeaves = append(iLeaves, l)
		case j:
			jLeaves = append(jLeaves, l)
		case rk:
		default:
			return nil, fmt.Errorf("%w: leaf %s has unknown root", ErrUnsupported, l.Name)
		}
	}
	var last *IterVar
	for _, l := range s.leaf {
		if l.Kind == Spatial {
			last = l
		}
	}
	if last == nil || s.rootOf(last) != j || s.kinds[last] != Vectorized {
		return nil, fmt.Errorf("%w: innermost spatial axis must be the vectorized column axis", ErrUnsupported)
	}
	switch len(jLeaves) {
	case 1:
	case 2:
		cfg.BlockWords = jLeaves[1].Extent
	default:
		return nil, fmt.Errorf("%w: column axis split more than once", ErrUnsupported)
	}
	for _, l := range s.leaf {
		if s.kinds[l] != ParallelFor {
			continue
		}
		if s.rootOf(l) == i {
			cfg.Parallel = ParallelRows
		} else if s.rootOf(l) == j && len(jLeaves) == 2 && l == jLeaves[0] {
			cfg.Parallel = ParallelBlocks
		} else {
			return nil, fmt.Errorf("%w: parallel axis must be rows or the outer column tile", ErrUnsupported)
		}
	}
	if len(iLeaves) > 0 && len(jLeaves) > 0 {
		cfg.RowsOuter = s.leafIndex(iLeaves[0]) < s.leafIndex(jLeaves[0])
	}
	return &GEMMKernel{cfg: cfg, a: a, b: b, c: s.op.Out}, nil
}

// Exec runs the GEMM over the bound buffers.
func (k *GEMMKernel) Exec(bind Bindings) error {
	if err := bind.check(k.a, k.b, k.c); err != nil {
		return err
	}
	aBuf, bBuf, cBuf := bind[k.a], bind[k.b], bind[k.c]
	cfg := k.cfg
	nBlocks := (cfg.N + cfg.BlockWords - 1) / cfg.BlockWords

	tile := func(row, blk int) {
		lo := blk * cfg.BlockWords
		hi := lo + cfg.BlockWords
		if hi > cfg.N {
			hi = cfg.N
		}
		cRow := cBuf[row*cfg.N*8:]
		for j := lo; j < hi; j++ {
			binary.LittleEndian.PutUint64(cRow[j*8:], 0)
		}
		for kk := 0; kk < cfg.K; kk++ {
			av := aBuf.Word(row*cfg.K + kk)
			if av == 0 {
				continue
			}
			bRow := bBuf[kk*cfg.N*8:]
			for j := lo; j < hi; j++ {
				cv := binary.LittleEndian.Uint64(cRow[j*8:])
				bv := binary.LittleEndian.Uint64(bRow[j*8:])
				binary.LittleEndian.PutUint64(cRow[j*8:], cv+av*bv)
			}
		}
	}
	runRange := func(lo, hi int, overRows bool) {
		if overRows {
			for row := lo; row < hi; row++ {
				for blk := 0; blk < nBlocks; blk++ {
					tile(row, blk)
				}
			}
		} else {
			for blk := lo; blk < hi; blk++ {
				for row := 0; row < cfg.M; row++ {
					tile(row, blk)
				}
			}
		}
	}
	switch cfg.Parallel {
	case ParallelRows:
		parallelRanges(cfg.M, cfg.Workers, func(lo, hi int) { runRange(lo, hi, true) })
	case ParallelBlocks:
		parallelRanges(nBlocks, cfg.Workers, func(lo, hi int) { runRange(lo, hi, false) })
	default:
		if cfg.RowsOuter {
			runRange(0, cfg.M, true)
		} else {
			runRange(0, nBlocks, false)
		}
	}
	return nil
}
