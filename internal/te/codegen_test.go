package te

import (
	"errors"
	"testing"
)

// These tests pin down the Build grammar: which schedules the EC template
// accepts and exactly why others are rejected, so autotuner changes cannot
// silently drift outside the compiled space.

func ecSchedule(t *testing.T, m, k, n int) (*Schedule, []*IterVar) {
	t.Helper()
	_, _, c := ECComputeDecl(m, k, n)
	s := CreateSchedule(c)
	return s, s.Leaf()
}

func wantUnsupported(t *testing.T, err error, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected rejection", label)
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("%s: err=%v, want ErrUnsupported", label, err)
	}
}

func TestBuildRejectsDoubleColumnSplit(t *testing.T) {
	s, ax := ecSchedule(t, 4, 8, 64)
	_, ji, err := s.Split(ax[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	_, jii, err := s.Split(ji, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(jii); err != nil {
		t.Fatal(err)
	}
	_, err = Build(s)
	wantUnsupported(t, err, "double column split")
}

func TestBuildRejectsDoubleReductionSplit(t *testing.T) {
	s, ax := ecSchedule(t, 4, 16, 64)
	if err := s.Vectorize(ax[1]); err != nil {
		t.Fatal(err)
	}
	_, ki, err := s.Split(ax[2], 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Split(ki, 2); err != nil {
		t.Fatal(err)
	}
	_, err = Build(s)
	wantUnsupported(t, err, "double reduction split")
}

func TestBuildRejectsOddFanin(t *testing.T) {
	s, ax := ecSchedule(t, 4, 12, 64)
	if err := s.Vectorize(ax[1]); err != nil {
		t.Fatal(err)
	}
	_, ki, err := s.Split(ax[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unroll(ki); err != nil {
		t.Fatal(err)
	}
	_, err = Build(s)
	wantUnsupported(t, err, "fanin 3")
}

func TestBuildSplitWithoutUnrollIsFaninOne(t *testing.T) {
	s, ax := ecSchedule(t, 4, 16, 64)
	if err := s.Vectorize(ax[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Split(ax[2], 4); err != nil {
		t.Fatal(err)
	}
	kern, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if kern.Config().Fanin != 1 {
		t.Errorf("fanin=%d want 1 for un-unrolled split", kern.Config().Fanin)
	}
}

func TestBuildRejectsMultipleParallelAxes(t *testing.T) {
	s, ax := ecSchedule(t, 4, 8, 64)
	jo, ji, err := s.Split(ax[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(ji); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(ax[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(jo); err != nil {
		t.Fatal(err)
	}
	_, err = Build(s)
	wantUnsupported(t, err, "two parallel axes")
}

func TestBuildRejectsParallelInnerColumn(t *testing.T) {
	s, ax := ecSchedule(t, 4, 8, 64)
	_, ji, err := s.Split(ax[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(ji); err != nil {
		t.Fatal(err)
	}
	// Annotating the vectorized inner axis as parallel conflicts at the
	// schedule level already.
	if err := s.Parallel(ji); err == nil {
		t.Fatal("conflicting annotation accepted")
	}
}

func TestBuildRejectsUnvectorizedWordAxis(t *testing.T) {
	s, ax := ecSchedule(t, 4, 8, 64)
	_, _, err := s.Split(ax[1], 16)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(s)
	wantUnsupported(t, err, "no vectorize annotation")
}

func TestBuildRejectsWrongDTypes(t *testing.T) {
	// Generator declared as Word64 instead of BitMask.
	a := Placeholder("A", Word64, 4, 8)
	b := Placeholder("B", Word64, 8, 64)
	rk := ReduceAxis("k", 8)
	c := Compute("C", []int{4, 64}, Word64, func(iv []*IterVar) Expr {
		return XorReducer.Reduce(And(a.At(V(iv[0]), V(rk)), b.At(V(rk), V(iv[1]))), rk)
	})
	s := CreateSchedule(c)
	if err := s.Vectorize(s.Leaf()[1]); err != nil {
		t.Fatal(err)
	}
	_, err := Build(s)
	wantUnsupported(t, err, "word64 generator")

	// Data declared as BitMask.
	a2 := Placeholder("A", BitMask, 4, 8)
	b2 := Placeholder("B", BitMask, 8, 64)
	c2 := Compute("C", []int{4, 64}, Word64, func(iv []*IterVar) Expr {
		rk2 := ReduceAxis("k", 8)
		return XorReducer.Reduce(And(a2.At(V(iv[0]), V(rk2)), b2.At(V(rk2), V(iv[1]))), rk2)
	})
	s2 := CreateSchedule(c2)
	if err := s2.Vectorize(s2.Leaf()[1]); err != nil {
		t.Fatal(err)
	}
	_, err = Build(s2)
	wantUnsupported(t, err, "bitmask data")
}

func TestBuildRejectsWrongIndexPattern(t *testing.T) {
	// B indexed [j, k] instead of [k, j] — a transposed data operand.
	a := Placeholder("A", BitMask, 4, 8)
	b := Placeholder("B", Word64, 64, 8)
	rk := ReduceAxis("k", 8)
	c := Compute("C", []int{4, 64}, Word64, func(iv []*IterVar) Expr {
		return XorReducer.Reduce(And(a.At(V(iv[0]), V(rk)), b.At(V(iv[1]), V(rk))), rk)
	})
	s := CreateSchedule(c)
	if err := s.Vectorize(s.Leaf()[1]); err != nil {
		t.Fatal(err)
	}
	_, err := Build(s)
	wantUnsupported(t, err, "transposed B")
}

func TestBuildRejectsNonReduction(t *testing.T) {
	// Elementwise xor without a reduction.
	a := Placeholder("A", Word64, 4, 64)
	b := Placeholder("B", Word64, 4, 64)
	c := Compute("C", []int{4, 64}, Word64, func(iv []*IterVar) Expr {
		return Xor(a.At(V(iv[0]), V(iv[1])), b.At(V(iv[0]), V(iv[1])))
	})
	s := CreateSchedule(c)
	if err := s.Vectorize(s.Leaf()[1]); err != nil {
		t.Fatal(err)
	}
	_, err := Build(s)
	wantUnsupported(t, err, "elementwise op")

	// But it lowers and interprets fine.
	mod, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	bind := Bindings{a: NewBuffer(a), b: NewBuffer(b), c: NewBuffer(c)}
	bind[a].SetWord(7, 0xF0)
	bind[b].SetWord(7, 0x0F)
	if err := Interpret(mod, bind); err != nil {
		t.Fatal(err)
	}
	if bind[c].Word(7) != 0xFF {
		t.Error("elementwise xor interpreted wrong")
	}
}
