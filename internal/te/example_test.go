package te_test

import (
	"fmt"
	"log"

	"gemmec/internal/te"
)

// Example reproduces the paper's Listing 3 end to end: declare the
// bitmatrix erasure code as a tensor expression, schedule it, build the
// kernel, and encode three tiny "planes".
func Example() {
	const m, k, n = 2, 3, 4 // parity planes x data planes x words

	// Listing 3, lines 9-12.
	a, b, c := te.ECComputeDecl(m, k, n)

	// Schedule: vectorize the word axis (always), fuse nothing else for
	// this tiny shape.
	s := te.CreateSchedule(c)
	axes := s.Leaf()
	if err := s.Vectorize(axes[1]); err != nil {
		log.Fatal(err)
	}
	kern, err := te.Build(s)
	if err != nil {
		log.Fatal(err)
	}

	// Generator: parity0 = d0^d1^d2, parity1 = d0^d2.
	aBuf := te.NewBuffer(a)
	bits := [2][3]bool{{true, true, true}, {true, false, true}}
	if err := te.PackMask(aBuf, m, k, func(i, j int) bool { return bits[i][j] }); err != nil {
		log.Fatal(err)
	}

	// Data planes: constant words for readability.
	bBuf := te.NewBuffer(b)
	for plane := 0; plane < k; plane++ {
		for w := 0; w < n; w++ {
			bBuf.SetWord(plane*n+w, uint64(1)<<uint(plane))
		}
	}
	cBuf := te.NewBuffer(c)
	if err := kern.Exec(te.Bindings{a: aBuf, b: bBuf, c: cBuf}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parity0 word0 = %d (1^2^4)\n", cBuf.Word(0))
	fmt.Printf("parity1 word0 = %d (1^4)\n", cBuf.Word(n))
	// Output:
	// parity0 word0 = 7 (1^2^4)
	// parity1 word0 = 5 (1^4)
}

// ExampleLower shows the loop IR the compiler produces for a tiled,
// reduction-unrolled schedule — what tvm.lower prints in the paper's
// workflow.
func ExampleLower() {
	_, _, c := te.ECComputeDecl(2, 4, 8)
	s := te.CreateSchedule(c)
	axes := s.Leaf()
	_, ji, err := s.Split(axes[1], 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Vectorize(ji); err != nil {
		log.Fatal(err)
	}
	if _, ki, err := s.Split(axes[2], 2); err != nil {
		log.Fatal(err)
	} else if err := s.Unroll(ki); err != nil {
		log.Fatal(err)
	}
	mod, err := te.Lower(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mod.Print())
	// Output:
	// // compute C[2 8]
	// for i in 0..2 {
	//   for j.o in 0..2 {
	//     for j.i in 0..4 { // vectorize
	//       C[i, (j.o*4 + j.i)] = 0
	//     }
	//   }
	// }
	// for i in 0..2 {
	//   for j.o in 0..2 {
	//     for j.i in 0..4 { // vectorize
	//       for k.o in 0..2 {
	//         for k.i in 0..2 { // unroll
	//           C[i, (j.o*4 + j.i)] = (C[i, (j.o*4 + j.i)] ^ (A[i, (k.o*2 + k.i)] & B[(k.o*2 + k.i), (j.o*4 + j.i)]))
	//         }
	//       }
	//     }
	//   }
	// }
}
