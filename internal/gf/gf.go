// Package gf implements arithmetic over binary Galois fields GF(2^w) for
// word sizes w in [1, 16].
//
// Erasure codes perform all of their encoding and decoding arithmetic over a
// finite field. This package provides the field itself: multiplication,
// division, inversion and exponentiation of field elements, backed by
// logarithm/antilogarithm tables for fast operation.
//
// Field elements are represented as uint32 values whose low w bits are the
// coefficients of a polynomial over GF(2); addition is bitwise XOR. Each
// field is constructed from a fixed primitive polynomial (see poly.go), so
// element representations are stable across processes — a property the
// tuning cache and on-disk stripe formats rely on.
package gf

import (
	"fmt"
)

// MaxW is the largest supported word size. Fields up to GF(2^16) cover every
// parameterization used by the paper (w = 8) and its future-work sweep
// (w in {4, 8, 16}).
const MaxW = 16

// Field is a binary extension field GF(2^w). It is immutable after
// construction and safe for concurrent use.
type Field struct {
	w      uint     // word size; field has 2^w elements
	prim   uint32   // primitive polynomial, including the x^w term
	size   uint32   // 2^w
	mask   uint32   // 2^w - 1
	logTbl []uint16 // log base alpha; logTbl[0] is unused
	expTbl []uint32 // alpha^i for i in [0, 2*(size-1))
	mulTbl []uint8  // full 256x256 product table, only for w == 8
	invTbl []uint32 // multiplicative inverses, indexed by element
}

// NewField constructs GF(2^w) using the package's default primitive
// polynomial for w. It returns an error if w is outside [1, MaxW].
func NewField(w uint) (*Field, error) {
	if w < 1 || w > MaxW {
		return nil, fmt.Errorf("gf: unsupported word size w=%d (want 1..%d)", w, MaxW)
	}
	return newFieldPoly(w, DefaultPrimitivePoly(w))
}

// MustField is like NewField but panics on error. It is intended for
// package-level initialization with known-good parameters.
func MustField(w uint) *Field {
	f, err := NewField(w)
	if err != nil {
		panic(err)
	}
	return f
}

// newFieldPoly builds the field from an explicit primitive polynomial.
func newFieldPoly(w uint, prim uint32) (*Field, error) {
	f := &Field{
		w:    w,
		prim: prim,
		size: 1 << w,
		mask: (1 << w) - 1,
	}
	if err := f.buildTables(); err != nil {
		return nil, err
	}
	return f, nil
}

// buildTables fills the log/exp tables by repeatedly multiplying by the
// generator alpha = x (i.e. 2). For a primitive polynomial, powers of alpha
// enumerate every nonzero element exactly once.
func (f *Field) buildTables() error {
	n := int(f.size)
	f.logTbl = make([]uint16, n)
	f.expTbl = make([]uint32, 2*(n-1))

	x := uint32(1)
	for i := 0; i < n-1; i++ {
		if x == 1 && i != 0 {
			return fmt.Errorf("gf: polynomial %#x is not primitive for w=%d (cycle length %d)", f.prim, f.w, i)
		}
		f.expTbl[i] = x
		f.logTbl[x] = uint16(i)
		x = f.mulSlow(x, 2)
	}
	if x != 1 {
		return fmt.Errorf("gf: polynomial %#x is not primitive for w=%d", f.prim, f.w)
	}
	// Mirror the exp table so Mul can index log(a)+log(b) without a modulo.
	copy(f.expTbl[n-1:], f.expTbl[:n-1])

	f.invTbl = make([]uint32, n)
	for e := 1; e < n; e++ {
		// a^-1 = alpha^((size-1) - log a)
		f.invTbl[e] = f.expTbl[(n-1)-int(f.logTbl[e])]
	}

	if f.w == 8 {
		f.mulTbl = make([]uint8, 256*256)
		for a := 0; a < 256; a++ {
			for b := 0; b < 256; b++ {
				f.mulTbl[a<<8|b] = uint8(f.mulLog(uint32(a), uint32(b)))
			}
		}
	}
	return nil
}

// mulSlow multiplies by shift-and-reduce. Used only during table
// construction and as a test oracle (exported via MulSlow).
func (f *Field) mulSlow(a, b uint32) uint32 {
	var p uint32
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		b >>= 1
		a <<= 1
		if a&f.size != 0 {
			a ^= f.prim
		}
	}
	return p & f.mask
}

// mulLog multiplies via the log/exp tables.
func (f *Field) mulLog(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.expTbl[int(f.logTbl[a])+int(f.logTbl[b])]
}

// W returns the field's word size w.
func (f *Field) W() uint { return f.w }

// Size returns the number of field elements, 2^w.
func (f *Field) Size() uint32 { return f.size }

// Mask returns 2^w - 1, the largest element value.
func (f *Field) Mask() uint32 { return f.mask }

// Poly returns the primitive polynomial used to construct the field,
// including the leading x^w term.
func (f *Field) Poly() uint32 { return f.prim }

// Valid reports whether e is a representable element of the field.
func (f *Field) Valid(e uint32) bool { return e <= f.mask }

// Add returns a + b. In characteristic-2 fields addition and subtraction are
// both bitwise XOR.
func (f *Field) Add(a, b uint32) uint32 { return (a ^ b) & f.mask }

// Sub returns a - b, which equals a + b in GF(2^w).
func (f *Field) Sub(a, b uint32) uint32 { return (a ^ b) & f.mask }

// Mul returns the field product a * b.
func (f *Field) Mul(a, b uint32) uint32 {
	if f.mulTbl != nil {
		return uint32(f.mulTbl[(a&0xff)<<8|(b&0xff)])
	}
	return f.mulLog(a&f.mask, b&f.mask)
}

// MulSlow returns the product computed by bitwise shift-and-reduce, without
// tables. It exists as an independent oracle for testing the table paths.
func (f *Field) MulSlow(a, b uint32) uint32 { return f.mulSlow(a&f.mask, b&f.mask) }

// Inv returns the multiplicative inverse of a. Inverting zero is a caller
// bug in every algorithm this package serves, so it panics.
func (f *Field) Inv(a uint32) uint32 {
	a &= f.mask
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.invTbl[a]
}

// Div returns a / b. It panics if b is zero.
func (f *Field) Div(a, b uint32) uint32 {
	b &= f.mask
	if b == 0 {
		panic("gf: division by zero")
	}
	a &= f.mask
	if a == 0 {
		return 0
	}
	d := int(f.logTbl[a]) - int(f.logTbl[b])
	if d < 0 {
		d += int(f.size) - 1
	}
	return f.expTbl[d]
}

// Exp returns base raised to the power e (an ordinary integer exponent).
func (f *Field) Exp(base uint32, e int) uint32 {
	base &= f.mask
	if base == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	n := int(f.size) - 1
	le := (int(f.logTbl[base]) * (e % n)) % n
	if le < 0 {
		le += n
	}
	return f.expTbl[le]
}

// Log returns the discrete logarithm of a to base alpha. It panics for zero,
// which has no logarithm.
func (f *Field) Log(a uint32) uint16 {
	a &= f.mask
	if a == 0 {
		panic("gf: log of zero")
	}
	return f.logTbl[a]
}

// Alpha returns alpha^i, the i-th power of the field generator.
func (f *Field) Alpha(i int) uint32 {
	n := int(f.size) - 1
	i %= n
	if i < 0 {
		i += n
	}
	return f.expTbl[i]
}

// DotProduct returns the inner product sum_i a[i]*b[i] over the field.
// The two slices must have equal length.
func (f *Field) DotProduct(a, b []uint32) uint32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf: dot product length mismatch %d vs %d", len(a), len(b)))
	}
	var s uint32
	for i := range a {
		s ^= f.Mul(a[i], b[i])
	}
	return s & f.mask
}

// PolyEval evaluates the polynomial with coefficients coef (coef[0] is the
// constant term) at point x, using Horner's rule.
func (f *Field) PolyEval(coef []uint32, x uint32) uint32 {
	var acc uint32
	for i := len(coef) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ (coef[i] & f.mask)
	}
	return acc & f.mask
}
