package gf

import (
	"encoding/binary"
	"fmt"
)

// This file provides bulk ("region") operations over GF(2^8): multiplying
// every byte of a buffer by a scalar and accumulating into a destination.
// These are the primitives a full-field (non-bitmatrix) Reed-Solomon
// implementation such as ISA-L is built from. Word-sized XOR helpers used by
// all the XOR-based coders also live here.

// MulTable is the 256-entry product table for one scalar c over GF(2^8):
// MulTable[b] = c*b. ISA-L's vectorized kernels hold the same content as two
// 16-entry nibble tables for PSHUFB; the split form is in NibbleTable.
type MulTable [256]uint8

// MulTable8 returns the region-multiplication table for scalar c over
// GF(2^8). The field must have w == 8.
func (f *Field) MulTable8(c uint8) *MulTable {
	if f.w != 8 {
		panic(fmt.Sprintf("gf: MulTable8 requires w=8 field, have w=%d", f.w))
	}
	var t MulTable
	for b := 0; b < 256; b++ {
		t[b] = uint8(f.Mul(uint32(c), uint32(b)))
	}
	return &t
}

// NibbleTable is the split-table form of a scalar multiplication over
// GF(2^8): c*b = Lo[b&0xf] ^ Hi[b>>4]. This is exactly the table layout
// Intel ISA-L feeds to PSHUFB; our isal-style kernels consume it to stay
// structurally faithful to that library.
type NibbleTable struct {
	Lo [16]uint8
	Hi [16]uint8
}

// NibbleTable8 returns the split-nibble multiplication tables for scalar c
// over GF(2^8). The field must have w == 8.
func (f *Field) NibbleTable8(c uint8) NibbleTable {
	if f.w != 8 {
		panic(fmt.Sprintf("gf: NibbleTable8 requires w=8 field, have w=%d", f.w))
	}
	var t NibbleTable
	for n := 0; n < 16; n++ {
		t.Lo[n] = uint8(f.Mul(uint32(c), uint32(n)))
		t.Hi[n] = uint8(f.Mul(uint32(c), uint32(n)<<4))
	}
	return t
}

// Mul applies the nibble tables to one byte.
func (t NibbleTable) Mul(b uint8) uint8 {
	return t.Lo[b&0xf] ^ t.Hi[b>>4]
}

// MulRegion sets dst[i] = c * src[i] for every byte, using a product table.
// dst and src must have the same length.
func MulRegion(t *MulTable, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulRegion length mismatch")
	}
	for i, b := range src {
		dst[i] = t[b]
	}
}

// MulAddRegion sets dst[i] ^= c * src[i] for every byte.
// dst and src must have the same length.
func MulAddRegion(t *MulTable, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulAddRegion length mismatch")
	}
	for i, b := range src {
		dst[i] ^= t[b]
	}
}

// XorRegion sets dst[i] ^= src[i] for every byte, processing eight bytes per
// step through uint64 words. dst and src must have the same length.
func XorRegion(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: XorRegion length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorRegion2 sets dst[i] ^= a[i] ^ b[i], reading two sources per pass over
// the destination. Multi-source XOR halves the store traffic relative to two
// XorRegion calls; the reduction-grouping schedule in the te codegen lowers
// to these kernels.
func XorRegion2(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("gf: XorRegion2 length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// XorRegion4 sets dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] in a single pass.
func XorRegion4(dst, a, b, c, d []byte) {
	if len(dst) != len(a) || len(dst) != len(b) || len(dst) != len(c) || len(dst) != len(d) {
		panic("gf: XorRegion4 length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:]) ^
			binary.LittleEndian.Uint64(d[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i]
	}
}

// XorRegion8 sets dst[i] ^= XOR of eight sources in a single pass over the
// destination. Eight-way fusion is the widest reduction group the te
// codegen's schedules use.
func XorRegion8(dst []byte, srcs *[8][]byte) {
	n := len(dst)
	for _, s := range srcs {
		if len(s) != n {
			panic("gf: XorRegion8 length mismatch")
		}
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:])
		v ^= binary.LittleEndian.Uint64(srcs[0][i:])
		v ^= binary.LittleEndian.Uint64(srcs[1][i:])
		v ^= binary.LittleEndian.Uint64(srcs[2][i:])
		v ^= binary.LittleEndian.Uint64(srcs[3][i:])
		v ^= binary.LittleEndian.Uint64(srcs[4][i:])
		v ^= binary.LittleEndian.Uint64(srcs[5][i:])
		v ^= binary.LittleEndian.Uint64(srcs[6][i:])
		v ^= binary.LittleEndian.Uint64(srcs[7][i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= srcs[0][i] ^ srcs[1][i] ^ srcs[2][i] ^ srcs[3][i] ^
			srcs[4][i] ^ srcs[5][i] ^ srcs[6][i] ^ srcs[7][i]
	}
}

// XorRegions sets dst[i] ^= xor of srcs[j][i] over all sources, dispatching
// to the widest fused kernel available and falling back pairwise. All
// sources must have the destination's length.
func XorRegions(dst []byte, srcs ...[]byte) {
	i := 0
	for ; i+4 <= len(srcs); i += 4 {
		XorRegion4(dst, srcs[i], srcs[i+1], srcs[i+2], srcs[i+3])
	}
	for ; i+2 <= len(srcs); i += 2 {
		XorRegion2(dst, srcs[i], srcs[i+1])
	}
	for ; i < len(srcs); i++ {
		XorRegion(dst, srcs[i])
	}
}

// CopyRegion copies src into dst; both must have the same length. It exists
// so coder code reads uniformly (CopyRegion/XorRegion pairs) and so the
// memcpy-overhead experiment has a single accounting point.
func CopyRegion(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: CopyRegion length mismatch")
	}
	copy(dst, src)
}
