package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allW lists every supported word size; several tests iterate all of them.
func allW() []uint {
	ws := make([]uint, 0, MaxW)
	for w := uint(1); w <= MaxW; w++ {
		ws = append(ws, w)
	}
	return ws
}

func TestNewFieldRange(t *testing.T) {
	if _, err := NewField(0); err == nil {
		t.Error("NewField(0) should fail")
	}
	if _, err := NewField(MaxW + 1); err == nil {
		t.Errorf("NewField(%d) should fail", MaxW+1)
	}
	for _, w := range allW() {
		f, err := NewField(w)
		if err != nil {
			t.Fatalf("NewField(%d): %v", w, err)
		}
		if f.W() != w {
			t.Errorf("w=%d: W()=%d", w, f.W())
		}
		if f.Size() != 1<<w {
			t.Errorf("w=%d: Size()=%d", w, f.Size())
		}
		if f.Mask() != (1<<w)-1 {
			t.Errorf("w=%d: Mask()=%#x", w, f.Mask())
		}
	}
}

func TestDefaultPolysPrimitive(t *testing.T) {
	// buildTables verifies primitivity as a side effect; also check
	// irreducibility independently for small w where trial division is cheap.
	for _, w := range allW() {
		p := DefaultPrimitivePoly(w)
		if PolyDegree(p) != int(w) {
			t.Errorf("w=%d: poly %#x has degree %d", w, p, PolyDegree(p))
		}
		if w <= 12 && !IsIrreducible(p) {
			t.Errorf("w=%d: poly %#x is reducible", w, p)
		}
	}
}

func TestNonPrimitivePolyRejected(t *testing.T) {
	// x^8 + x^4 + x^3 + x + 1 (0x11b, the AES polynomial) is irreducible but
	// NOT primitive: alpha=2 has order 51, so table construction must fail.
	if _, err := newFieldPoly(8, 0x11b); err == nil {
		t.Fatal("expected 0x11b to be rejected as non-primitive")
	}
	// A reducible polynomial must also fail.
	if _, err := newFieldPoly(8, 0x100); err == nil {
		t.Fatal("expected reducible polynomial to be rejected")
	}
}

func TestMulMatchesSlowOracle(t *testing.T) {
	for _, w := range []uint{1, 2, 4, 8, 12, 16} {
		f := MustField(w)
		rng := rand.New(rand.NewSource(int64(w)))
		n := 2000
		if f.Size() <= 256 {
			// Exhaustive for small fields.
			for a := uint32(0); a < f.Size(); a++ {
				for b := uint32(0); b < f.Size(); b++ {
					if got, want := f.Mul(a, b), f.MulSlow(a, b); got != want {
						t.Fatalf("w=%d: Mul(%d,%d)=%d want %d", w, a, b, got, want)
					}
				}
			}
			continue
		}
		for i := 0; i < n; i++ {
			a := rng.Uint32() & f.Mask()
			b := rng.Uint32() & f.Mask()
			if got, want := f.Mul(a, b), f.MulSlow(a, b); got != want {
				t.Fatalf("w=%d: Mul(%d,%d)=%d want %d", w, a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, w := range []uint{4, 8, 16} {
		f := MustField(w)
		mask := f.Mask()

		commutative := func(a, b uint32) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a) && f.Add(a, b) == f.Add(b, a)
		}
		associative := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c)) &&
				f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c))
		}
		distributive := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		identity := func(a uint32) bool {
			a &= mask
			return f.Mul(a, 1) == a && f.Add(a, 0) == a && f.Mul(a, 0) == 0
		}
		inverse := func(a uint32) bool {
			a &= mask
			if a == 0 {
				return true
			}
			return f.Mul(a, f.Inv(a)) == 1
		}
		charTwo := func(a uint32) bool {
			a &= mask
			return f.Add(a, a) == 0
		}
		for name, prop := range map[string]any{
			"commutative":  commutative,
			"associative":  associative,
			"distributive": distributive,
			"identity":     identity,
			"inverse":      inverse,
			"charTwo":      charTwo,
		} {
			if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
				t.Errorf("w=%d: axiom %s failed: %v", w, name, err)
			}
		}
	}
}

func TestDivExpLog(t *testing.T) {
	for _, w := range []uint{4, 8, 16} {
		f := MustField(w)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			a := rng.Uint32() & f.Mask()
			b := rng.Uint32()&f.Mask() | 1 // nonzero-ish
			if b == 0 {
				b = 1
			}
			q := f.Div(a, b)
			if f.Mul(q, b) != a {
				t.Fatalf("w=%d: Div(%d,%d)=%d but %d*%d=%d", w, a, b, q, q, b, f.Mul(q, b))
			}
		}
		// Exp/Log consistency over all nonzero elements of a small field.
		if w == 4 || w == 8 {
			for e := uint32(1); e < f.Size(); e++ {
				if f.Alpha(int(f.Log(e))) != e {
					t.Fatalf("w=%d: Alpha(Log(%d)) != %d", w, e, e)
				}
			}
		}
		// Exp laws.
		g := f.Alpha(1)
		if f.Exp(g, 0) != 1 {
			t.Errorf("w=%d: g^0 != 1", w)
		}
		if f.Exp(g, int(f.Size())-1) != 1 {
			t.Errorf("w=%d: g^(size-1) != 1 (Fermat)", w)
		}
		if f.Exp(g, -1) != f.Inv(g) {
			t.Errorf("w=%d: g^-1 != Inv(g)", w)
		}
		if f.Exp(0, 0) != 1 || f.Exp(0, 5) != 0 {
			t.Errorf("w=%d: zero-base exp conventions broken", w)
		}
	}
}

// euclidInv computes the inverse via the extended Euclidean algorithm over
// GF(2) polynomials — an oracle fully independent of the log/exp tables.
func euclidInv(a, prim uint32) uint32 {
	// Invariants: r0 = t0*a (mod prim), r1 = t1*a (mod prim).
	r0, r1 := prim, a
	var t0, t1 uint32 = 0, 1
	for r1 != 1 {
		d := PolyDegree(r0) - PolyDegree(r1)
		if d < 0 {
			r0, r1 = r1, r0
			t0, t1 = t1, t0
			continue
		}
		r0 ^= r1 << uint(d)
		t0 ^= t1 << uint(d)
	}
	return PolyMod(t1, prim)
}

func TestInvMatchesEuclidOracle(t *testing.T) {
	for _, w := range []uint{4, 8} {
		f := MustField(w)
		for a := uint32(1); a < f.Size(); a++ {
			want := euclidInv(a, f.Poly())
			if got := f.Inv(a); got != want {
				t.Fatalf("w=%d: Inv(%d)=%d, Euclid says %d", w, a, got, want)
			}
		}
	}
	// Spot checks for w=16 (exhaustive is slow).
	f := MustField(16)
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 500; i++ {
		a := rng.Uint32()&f.Mask() | 1
		if f.Inv(a) != euclidInv(a, f.Poly()) {
			t.Fatalf("w=16: Inv(%d) mismatch", a)
		}
	}
}

func TestAlphaGeneratesField(t *testing.T) {
	for _, w := range []uint{2, 4, 8} {
		f := MustField(w)
		seen := make(map[uint32]bool)
		for i := 0; i < int(f.Size())-1; i++ {
			e := f.Alpha(i)
			if seen[e] {
				t.Fatalf("w=%d: alpha^%d=%d repeats", w, i, e)
			}
			seen[e] = true
		}
		if len(seen) != int(f.Size())-1 {
			t.Fatalf("w=%d: generator order %d != %d", w, len(seen), f.Size()-1)
		}
	}
}

func TestInvDivZeroPanics(t *testing.T) {
	f := MustField(8)
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { f.Inv(0) },
		"Div(1,0)": func() { f.Div(1, 0) },
		"Log(0)":   func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDotProduct(t *testing.T) {
	f := MustField(8)
	a := []uint32{1, 2, 3, 0}
	b := []uint32{5, 0, 7, 9}
	want := f.Mul(1, 5) ^ f.Mul(3, 7)
	if got := f.DotProduct(a, b); got != want {
		t.Errorf("DotProduct=%d want %d", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched dot product lengths should panic")
			}
		}()
		f.DotProduct(a, b[:2])
	}()
}

func TestPolyEval(t *testing.T) {
	f := MustField(8)
	// p(x) = 3 + 2x + x^2 at x=5: 3 ^ 2*5 ^ 5*5
	coef := []uint32{3, 2, 1}
	want := uint32(3) ^ f.Mul(2, 5) ^ f.Mul(5, 5)
	if got := f.PolyEval(coef, 5); got != want {
		t.Errorf("PolyEval=%d want %d", got, want)
	}
	if f.PolyEval(nil, 9) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}

func TestPolyHelpers(t *testing.T) {
	if PolyDegree(0) != -1 {
		t.Error("degree of zero polynomial should be -1")
	}
	if PolyDegree(1) != 0 || PolyDegree(0x11d) != 8 {
		t.Error("PolyDegree wrong")
	}
	if PolyMod(0x11d, 0x11d) != 0 {
		t.Error("p mod p should be 0")
	}
	// (x+1)(x+1) = x^2+1 mod anything big enough
	if PolyMulMod(0x3, 0x3, 0x100) != 0x5 {
		t.Errorf("(x+1)^2 = %#x want 0x5", PolyMulMod(0x3, 0x3, 0x100))
	}
	// x^2 is reducible, x^2+x+1 is irreducible.
	if IsIrreducible(0x4) {
		t.Error("x^2 should be reducible")
	}
	if !IsIrreducible(0x7) {
		t.Error("x^2+x+1 should be irreducible")
	}
	if IsIrreducible(1) {
		t.Error("constant polynomial is not irreducible")
	}
}
