package gf

// defaultPoly lists the default primitive polynomial for each word size.
// These are the same polynomials used by Jerasure and ISA-L, so generator
// matrices built here are interoperable with data encoded by those
// libraries. Index 0 is unused.
var defaultPoly = [MaxW + 1]uint32{
	0,
	0x3,     // w=1:  x + 1
	0x7,     // w=2:  x^2 + x + 1
	0xb,     // w=3:  x^3 + x + 1
	0x13,    // w=4:  x^4 + x + 1
	0x25,    // w=5:  x^5 + x^2 + 1
	0x43,    // w=6:  x^6 + x + 1
	0x89,    // w=7:  x^7 + x^3 + 1
	0x11d,   // w=8:  x^8 + x^4 + x^3 + x^2 + 1
	0x211,   // w=9:  x^9 + x^4 + 1
	0x409,   // w=10: x^10 + x^3 + 1
	0x805,   // w=11: x^11 + x^2 + 1
	0x1053,  // w=12: x^12 + x^6 + x^4 + x + 1
	0x201b,  // w=13: x^13 + x^4 + x^3 + x + 1
	0x4443,  // w=14: x^14 + x^10 + x^6 + x + 1
	0x8003,  // w=15: x^15 + x + 1
	0x1100b, // w=16: x^16 + x^12 + x^3 + x + 1
}

// DefaultPrimitivePoly returns the default primitive polynomial for GF(2^w),
// including the leading x^w term. It panics if w is out of range; callers
// that take w from user input should validate through NewField instead.
func DefaultPrimitivePoly(w uint) uint32 {
	if w < 1 || w > MaxW {
		panic("gf: word size out of range")
	}
	return defaultPoly[w]
}

// PolyDegree returns the degree of the polynomial p over GF(2), i.e. the
// position of its highest set bit. The zero polynomial has degree -1.
func PolyDegree(p uint32) int {
	d := -1
	for p != 0 {
		p >>= 1
		d++
	}
	return d
}

// PolyMod reduces polynomial a modulo polynomial m over GF(2).
func PolyMod(a, m uint32) uint32 {
	dm := PolyDegree(m)
	if dm < 0 {
		panic("gf: modulo by zero polynomial")
	}
	for {
		da := PolyDegree(a)
		if da < dm {
			return a
		}
		a ^= m << uint(da-dm)
	}
}

// PolyMulMod multiplies polynomials a and b over GF(2) and reduces the
// product modulo m. It operates on 64-bit intermediates and therefore
// supports deg(a), deg(b) < 32.
func PolyMulMod(a, b, m uint32) uint32 {
	var p uint64
	x := uint64(a)
	for b != 0 {
		if b&1 != 0 {
			p ^= x
		}
		b >>= 1
		x <<= 1
	}
	// Reduce the 64-bit product.
	dm := PolyDegree(m)
	if dm < 0 {
		panic("gf: modulo by zero polynomial")
	}
	for d := polyDegree64(p); d >= dm; d = polyDegree64(p) {
		p ^= uint64(m) << uint(d-dm)
	}
	return uint32(p)
}

func polyDegree64(p uint64) int {
	d := -1
	for p != 0 {
		p >>= 1
		d++
	}
	return d
}

// IsIrreducible reports whether the polynomial p of degree w is irreducible
// over GF(2), by trial division by all polynomials of degree up to w/2.
// It is exponential in w and intended for tests and table validation only.
func IsIrreducible(p uint32) bool {
	w := PolyDegree(p)
	if w <= 0 {
		return false
	}
	for d := 1; d <= w/2; d++ {
		for q := uint32(1 << d); q < uint32(2<<d); q++ {
			if polyDivides(q, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether q divides p over GF(2).
func polyDivides(q, p uint32) bool {
	return PolyMod(p, q) == 0
}
