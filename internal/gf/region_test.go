package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMulTable8(t *testing.T) {
	f := MustField(8)
	for _, c := range []uint8{0, 1, 2, 0x53, 0xff} {
		tbl := f.MulTable8(c)
		for b := 0; b < 256; b++ {
			if uint32(tbl[b]) != f.Mul(uint32(c), uint32(b)) {
				t.Fatalf("c=%d b=%d: table %d want %d", c, b, tbl[b], f.Mul(uint32(c), uint32(b)))
			}
		}
	}
}

func TestNibbleTable8MatchesMul(t *testing.T) {
	f := MustField(8)
	prop := func(c, b uint8) bool {
		nt := f.NibbleTable8(c)
		return uint32(nt.Mul(b)) == f.Mul(uint32(c), uint32(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTablesRequireW8(t *testing.T) {
	f := MustField(4)
	for name, fn := range map[string]func(){
		"MulTable8":    func() { f.MulTable8(3) },
		"NibbleTable8": func() { f.NibbleTable8(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on w=4 field should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulRegionAndMulAddRegion(t *testing.T) {
	f := MustField(8)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 1000} {
		src := randBytes(rng, n)
		c := uint8(rng.Intn(256))
		tbl := f.MulTable8(c)

		dst := make([]byte, n)
		MulRegion(tbl, dst, src)
		for i := range src {
			if uint32(dst[i]) != f.Mul(uint32(c), uint32(src[i])) {
				t.Fatalf("n=%d i=%d MulRegion wrong", n, i)
			}
		}

		acc := randBytes(rng, n)
		want := make([]byte, n)
		for i := range acc {
			want[i] = acc[i] ^ dst[i]
		}
		MulAddRegion(tbl, acc, src)
		if !bytes.Equal(acc, want) {
			t.Fatalf("n=%d MulAddRegion wrong", n)
		}
	}
}

func TestXorRegionVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 8, 15, 16, 17, 8192} {
		a := randBytes(rng, n)
		b := randBytes(rng, n)
		c := randBytes(rng, n)
		d := randBytes(rng, n)
		base := randBytes(rng, n)

		want := make([]byte, n)
		for i := 0; i < n; i++ {
			want[i] = base[i] ^ a[i]
		}
		got := append([]byte(nil), base...)
		XorRegion(got, a)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d XorRegion wrong", n)
		}

		for i := 0; i < n; i++ {
			want[i] = base[i] ^ a[i] ^ b[i]
		}
		got = append([]byte(nil), base...)
		XorRegion2(got, a, b)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d XorRegion2 wrong", n)
		}

		for i := 0; i < n; i++ {
			want[i] = base[i] ^ a[i] ^ b[i] ^ c[i] ^ d[i]
		}
		got = append([]byte(nil), base...)
		XorRegion4(got, a, b, c, d)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d XorRegion4 wrong", n)
		}
	}
}

func TestXorRegionsFusion(t *testing.T) {
	// XorRegions must equal sequential XorRegion for any source count,
	// exercising the 4-wide, 2-wide and single-source tails.
	rng := rand.New(rand.NewSource(3))
	n := 129
	for numSrc := 0; numSrc <= 11; numSrc++ {
		srcs := make([][]byte, numSrc)
		for i := range srcs {
			srcs[i] = randBytes(rng, n)
		}
		base := randBytes(rng, n)
		want := append([]byte(nil), base...)
		for _, s := range srcs {
			XorRegion(want, s)
		}
		got := append([]byte(nil), base...)
		XorRegions(got, srcs...)
		if !bytes.Equal(got, want) {
			t.Fatalf("numSrc=%d XorRegions != sequential", numSrc)
		}
	}
}

func TestRegionLengthMismatchPanics(t *testing.T) {
	f := MustField(8)
	tbl := f.MulTable8(2)
	a, b := make([]byte, 8), make([]byte, 9)
	for name, fn := range map[string]func(){
		"XorRegion":    func() { XorRegion(a, b) },
		"XorRegion2":   func() { XorRegion2(a, a, b) },
		"XorRegion4":   func() { XorRegion4(a, a, a, a, b) },
		"MulRegion":    func() { MulRegion(tbl, a, b) },
		"MulAddRegion": func() { MulAddRegion(tbl, a, b) },
		"CopyRegion":   func() { CopyRegion(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCopyRegion(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := make([]byte, 3)
	CopyRegion(dst, src)
	if !bytes.Equal(dst, src) {
		t.Error("CopyRegion did not copy")
	}
}

func BenchmarkXorRegion(b *testing.B) {
	dst := make([]byte, 128<<10)
	src := make([]byte, 128<<10)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorRegion(dst, src)
	}
}

func BenchmarkXorRegion4(b *testing.B) {
	n := 128 << 10
	dst := make([]byte, n)
	srcs := [][]byte{make([]byte, n), make([]byte, n), make([]byte, n), make([]byte, n)}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorRegion4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
	}
}

func BenchmarkMulAddRegion(b *testing.B) {
	f := MustField(8)
	tbl := f.MulTable8(0x53)
	dst := make([]byte, 128<<10)
	src := make([]byte, 128<<10)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddRegion(tbl, dst, src)
	}
}
