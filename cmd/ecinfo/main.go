// Command ecinfo inspects an erasure-code configuration without encoding
// anything: the generator matrix, its bitmatrix density, the XOR-program
// cost before and after common-subexpression elimination, the kernel
// schedule that would run, and the lowered loop IR — the introspection §8
// of the paper plans ("investigate the learning-based tuning ... and reason
// about the optimizations it performs on the generated code").
//
// Usage:
//
//	ecinfo -k 10 -r 4                      # summary
//	ecinfo -k 10 -r 4 -matrix              # print the coding matrix
//	ecinfo -k 10 -r 4 -ir                  # print the lowered loop IR
//	ecinfo -k 10 -r 4 -construction cauchy-best
package main

import (
	"flag"
	"fmt"
	"os"

	"gemmec/internal/autotune"
	"gemmec/internal/bitmatrix"
	"gemmec/internal/core"
	"gemmec/internal/gf"
	"gemmec/internal/matrix"
	"gemmec/internal/uezato"
)

func main() {
	var (
		k     = flag.Int("k", 10, "data units")
		r     = flag.Int("r", 4, "parity units")
		w     = flag.Int("w", 8, "field word size")
		unit  = flag.Int("unit", 128<<10, "unit size in bytes")
		cons  = flag.String("construction", "cauchy-good", "cauchy | cauchy-good | cauchy-best | vandermonde")
		showM = flag.Bool("matrix", false, "print the coding matrix")
		showI = flag.Bool("ir", false, "print the lowered loop IR of the encode kernel")
		showB = flag.Bool("bitmatrix", false, "print the generator bitmatrix")
	)
	flag.Parse()

	f, err := gf.NewField(uint(*w))
	if err != nil {
		fatal(err)
	}
	var coding *matrix.Matrix
	var construction core.Construction
	switch *cons {
	case "cauchy":
		coding, err = matrix.Cauchy(f, *r, *k)
		construction = core.ConstructionCauchy
	case "cauchy-good":
		coding, err = matrix.CauchyGood(f, *r, *k)
		construction = core.ConstructionCauchyGood
	case "cauchy-best":
		coding, err = bitmatrix.CauchyBest(f, *r, *k, 64)
		construction = core.ConstructionCauchyBest
	case "vandermonde":
		var gen *matrix.Matrix
		gen, err = matrix.VandermondeRS(f, *k, *r)
		if err == nil {
			coding, err = matrix.CodingRows(gen, *k)
		}
		construction = core.ConstructionVandermonde
	default:
		fatal(fmt.Errorf("unknown construction %q", *cons))
	}
	if err != nil {
		fatal(err)
	}

	bm := bitmatrix.FromGF(coding)
	prog := uezato.FromBitMatrix(bm)
	naive := prog.XORCount()
	prog.EliminateCommonSubexpressions()

	eng, err := core.New(*k, *r, *unit, core.Options{W: *w, Construction: construction})
	if err != nil {
		fatal(err)
	}
	l := eng.Layout()
	space, err := autotune.NewSpace(l.ParityPlanes(), l.DataPlanes(), l.PlaneSize/8)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("code:        (%d+%d, %d) over GF(2^%d), %s construction\n", *k, *r, *k, *w, *cons)
	fmt.Printf("storage:     overhead %.3fx, tolerates any %d lost units\n", float64(*k+*r)/float64(*k), *r)
	fmt.Printf("stripe:      %d x %d B units; planes %d B; GEMM %dx%dx%d words\n",
		*k+*r, *unit, l.PlaneSize, l.ParityPlanes(), l.DataPlanes(), l.PlaneSize/8)
	fmt.Printf("bitmatrix:   %dx%d, %d ones (density %.1f%%)\n",
		bm.Rows(), bm.Cols(), bm.Ones(), 100*float64(bm.Ones())/float64(bm.Rows()*bm.Cols()))
	fmt.Printf("xor program: %d XORs naive, %d after CSE (%.1f%% saved) [uezato-baseline view]\n",
		naive, prog.XORCount(), 100*float64(naive-prog.XORCount())/float64(naive))
	fmt.Printf("schedule:    %v (space of %d schedules)\n", eng.Params(), space.Size())

	if *showM {
		fmt.Printf("\ncoding matrix (%dx%d over GF(2^%d)):\n%s", coding.Rows(), coding.Cols(), *w, coding.String())
	}
	if *showB {
		fmt.Printf("\ngenerator bitmatrix (%dx%d):\n%s", bm.Rows(), bm.Cols(), bm.String())
	}
	if *showI {
		ir, err := eng.LoweredIR()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nlowered encode kernel IR:\n%s", ir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecinfo:", err)
	os.Exit(1)
}
