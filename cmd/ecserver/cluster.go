package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"gemmec/internal/obs"
	"gemmec/internal/peer"
	"gemmec/internal/server"
)

// clusterOpts carries the flag values cluster mode consumes.
type clusterOpts struct {
	addr, root                string
	k, r, unit                int
	workers, maxQueue         int
	peers, peersFile          string
	peerID                    int
	secret                    string
	writeQuorum               int
	rebuildNode               int
	scrubEvery                time.Duration
	drain                     time.Duration
	debugAddr                 string
	slowReq                   time.Duration
	accessLog                 bool
	accessLogFile             string
	reqTimeout                time.Duration
	maxObject                 int64
	traceSample, traceRing    int
	readHeaderTimeout         time.Duration
	idleTimeout, writeTimeout time.Duration
}

// clusterMain runs ecserver as one member of a networked cluster: a peer
// (serving the internal shard-transfer API from its local shard store)
// and a gateway (serving the client object API by striping shards across
// the ring). With -rebuild-node it instead performs one rebuild of the
// named member and exits.
func clusterMain(logger *log.Logger, o clusterOpts) {
	var (
		members []peer.Member
		err     error
	)
	if o.peersFile != "" {
		members, err = peer.LoadMembers(o.peersFile)
	} else {
		members, err = peer.ParseMembers(o.peers)
	}
	if err != nil {
		logger.Fatalf("ecserver: %v", err)
	}
	ring, err := peer.NewRing(members)
	if err != nil {
		logger.Fatalf("ecserver: %v", err)
	}
	self, ok := ring.Member(o.peerID)
	if !ok {
		logger.Fatalf("ecserver: -peer-id %d is not in the membership (have %d members)", o.peerID, ring.Len())
	}
	if o.secret == "" {
		logger.Printf("ecserver: WARNING: cluster mode without -cluster-secret — the internal peer API is unauthenticated")
	}

	// A one-shot rebuild (-rebuild-node) is a coordinator, not a member:
	// it owns no shard data, so every member — including the one named by
	// -peer-id — is reached over HTTP and -root is never opened. A serving
	// process short-circuits its own member through the local store.
	var (
		ps         *server.PeerStore
		transports = make(map[int]peer.Transport, ring.Len())
		clients    []*peer.Client
	)
	if o.rebuildNode < 0 {
		ps, err = server.OpenPeerStore(o.root)
		if err != nil {
			logger.Fatalf("ecserver: %v", err)
		}
	}
	for _, m := range ring.Members() {
		if ps != nil && m.ID == self.ID {
			transports[m.ID] = server.NewLocalTransport(ps)
			continue
		}
		c := peer.NewClient(m, peer.ClientConfig{Secret: o.secret})
		clients = append(clients, c)
		transports[m.ID] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	gw, err := server.NewGateway(server.GatewayConfig{
		Ring:        ring,
		Transports:  transports,
		SelfID:      self.ID,
		K:           o.k,
		R:           o.r,
		UnitSize:    o.unit,
		Workers:     o.workers,
		MaxStreams:  o.maxQueue,
		WriteQuorum: o.writeQuorum,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatalf("ecserver: %v", err)
	}
	defer gw.Close()

	if o.rebuildNode >= 0 {
		// One-shot recovery: reconstruct every shard the named member should
		// hold, push them to its current address, print the stats, exit.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		logger.Printf("ecserver: rebuilding member %d across %d members...", o.rebuildNode, ring.Len())
		st, err := gw.RebuildNode(ctx, o.rebuildNode)
		if err != nil {
			logger.Fatalf("ecserver: rebuild: %v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st) //nolint:errcheck
		logger.Printf("ecserver: rebuilt %d shard(s) across %d object(s): %d bytes read, %d written (amplification %.2f)",
			st.ShardsRebuilt, st.Objects, st.BytesRead, st.BytesWritten, st.Amplification())
		if len(st.Errors) > 0 {
			logger.Fatalf("ecserver: rebuild left %d object(s) unrepaired", len(st.Errors))
		}
		return
	}

	metrics := server.NewMetrics(nil)
	gw.SetMetrics(metrics)
	obs.RegisterBuildInfo(metrics.Registry,
		obs.L("mode", "cluster"), obs.L("member", strconv.Itoa(self.ID)),
		obs.L("k", strconv.Itoa(o.k)), obs.L("r", strconv.Itoa(o.r)),
		obs.L("unit", strconv.Itoa(o.unit)))
	tracer := obs.NewRecorder(obs.RecorderConfig{
		Capacity:    o.traceRing,
		SampleEvery: o.traceSample,
		Slow:        o.slowReq,
	})
	logger.Printf("ecserver: cluster member %d (of %d) gateway on %s (k=%d r=%d unit=%d, write quorum k+%d)",
		self.ID, ring.Len(), o.addr, o.k, o.r, o.unit, o.writeQuorum)

	var scrubber *server.Scrubber
	if o.scrubEvery > 0 {
		scrubber = server.StartScrubber(gw, o.scrubEvery, logger.Printf)
		logger.Printf("ecserver: background cluster repair sweep every ~%v (jittered)", o.scrubEvery)
	}

	hcfg := server.Config{
		Logf:                 logger.Printf,
		Metrics:              metrics,
		Tracer:               tracer,
		Scrubber:             scrubber,
		SlowRequestThreshold: o.slowReq,
		RequestTimeout:       o.reqTimeout,
		MaxObjectSize:        o.maxObject,
	}
	if o.accessLog {
		dst := os.Stderr
		if o.accessLogFile != "" {
			f, err := os.OpenFile(o.accessLogFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				logger.Fatalf("ecserver: %v", err)
			}
			defer f.Close()
			dst = f
		}
		hcfg.AccessLog = obs.NewLogger(dst)
	}

	if o.debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metricsz", metrics.Registry.Handler())
		dbg.Handle("/tracez", tracer.Handler())
		go func() {
			logger.Printf("ecserver: debug mux (pprof, metricsz, tracez) on %s", o.debugAddr)
			if err := http.ListenAndServe(o.debugAddr, dbg); err != nil {
				logger.Printf("ecserver: debug mux: %v", err)
			}
		}()
	}

	// One listener carries both roles: the peer API under /internal/ (other
	// members' shard traffic) and the client object API everywhere else.
	mux := http.NewServeMux()
	mux.Handle("/internal/", server.NewPeerAPI(ps, o.secret, logger.Printf))
	mux.Handle("/", server.NewBackendHandler(gw, hcfg))

	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           mux,
		ReadHeaderTimeout: o.readHeaderTimeout,
		IdleTimeout:       o.idleTimeout,
		WriteTimeout:      o.writeTimeout,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Fatalf("ecserver: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("ecserver: shutting down, draining in-flight requests (timeout %v)", o.drain)
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("ecserver: drain incomplete (%v), canceling in-flight requests", err)
		cancelBase()
		srv.Close()
	}
	if scrubber != nil {
		scrubber.Stop()
	}
	gst, _ := gw.StatusSnapshot().(server.GatewayStats)
	pst := ps.Stats()
	fmt.Fprintf(os.Stderr,
		"ecserver: exiting — member %d: %d puts, %d gets (%d degraded), %d quorum failures; peer store: %d shard puts, %d shard gets\n",
		self.ID, gst.Puts, gst.Gets, gst.DegradedGets, gst.QuorumFailures, pst.ShardPuts, pst.ShardGets)
}
