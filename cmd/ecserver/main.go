// Command ecserver is the networked erasure-coded object daemon: an HTTP
// object store that stripes every uploaded object across N local "node"
// directories (distinct failure domains) through the gemmec streaming
// pipeline, serves reads with transparent degraded-read reconstruction
// when shards are missing or corrupt, and runs a background scrubber that
// heals damage on a jittered interval.
//
// Start a 6-node store and exercise a failure:
//
//	ecserver -addr :8080 -root /var/lib/ecserver -nodes 6 -k 4 -r 2
//	eccli put -server http://localhost:8080 -name big.bin -in big.bin
//	rm -r /var/lib/ecserver/node_002            # lose a failure domain
//	eccli get -server http://localhost:8080 -name big.bin -out restored.bin
//	                                            # degraded read, bytes intact
//	curl -X POST http://localhost:8080/scrub    # or wait for the scrubber
//
// Endpoints: PUT/GET/HEAD/DELETE /o/<name>, GET /objects, POST /scrub,
// GET /statusz, GET /healthz (503 when the scrub loop is wedged),
// GET /metricsz (Prometheus text format). SIGINT/SIGTERM drain in-flight
// requests and the in-flight scrub sweep before exiting.
//
// Cluster mode (-peers or -peers-file) turns N ecserver processes into
// one erasure-coded cluster of real networked peers: every process
// stores individual shards for the ring (the /internal/ shard-transfer
// API, authenticated by -cluster-secret) and any of them serves as a
// client-facing gateway, striping each object's k+r shards across
// distinct members. Writes commit on a k+(-write-quorum) shard-ack
// quorum and are abandoned cleanly otherwise; reads fetch surviving
// shards from live peers and reconstruct transparently; a lost member is
// restored with -rebuild-node (or POST /rebuild/{id}). A three-peer
// walkthrough lives in the README's Cluster section.
//
// Observability: every request gets an X-Gemmec-Request-Id and a JSON
// access-log line on stderr (silence with -access-log=false or redirect
// with -access-log-file); requests slower than -slow-request are called
// out; 1 in -trace-sample requests (plus every errored or slow one) is
// recorded as a span waterfall in the /tracez flight recorder, with
// cross-peer spans merged in over X-Gemmec-Trace in cluster mode;
// -debug-addr starts a second listener carrying net/http/pprof — kept
// off the data-plane address so profiling endpoints are never reachable
// from the object port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"gemmec"
	"gemmec/internal/obs"
	"gemmec/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	root := flag.String("root", "ecserver-data", "storage root (node directories + metadata live here)")
	nodes := flag.Int("nodes", 6, "number of node directories (failure domains), >= k+r")
	k := flag.Int("k", 4, "data shards per stripe")
	r := flag.Int("r", 2, "parity shards per stripe")
	unit := flag.Int("unit", gemmec.DefaultUnitSize, "shard unit size in bytes")
	workers := flag.Int("workers", 0,
		"size of the shared encode/decode worker pool every request's stripe work runs on (0 = GOMAXPROCS, capped at 8)")
	maxQueue := flag.Int("max-queue", 0,
		"max concurrently admitted streaming requests; past it PUT/GET are shed with 429 + Retry-After (0 = unbounded)")
	slabThreshold := flag.Int64("slab-threshold", 0,
		"pack PUTs at or below this many bytes into shared group-committed slabs instead of per-object shard sets (0 disables)")
	slabWindow := flag.Duration("slab-window", 0,
		"max latency a small PUT waits for its slab batch to commit (0 = 2ms)")
	slabMaxBytes := flag.Int64("slab-max-bytes", 0,
		"commit a slab batch early once its payload reaches this many bytes (0 = 4MiB)")
	scrubEvery := flag.Duration("scrub-interval", time.Minute,
		"target interval between background scrub sweeps, jittered +/-50% (0 disables the scrubber)")
	drain := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	debugAddr := flag.String("debug-addr", "",
		"listen address for the debug mux (net/http/pprof); empty disables it")
	slowReq := flag.Duration("slow-request", time.Second,
		"log and count requests slower than this (0 disables the check)")
	traceSample := flag.Int("trace-sample", 16,
		"head-sample 1 in N requests into the /tracez flight recorder; errored and slow requests are always kept (0 disables head sampling)")
	traceRing := flag.Int("trace-ring", 512,
		"how many finished request traces the /tracez flight recorder retains")
	accessLog := flag.Bool("access-log", true, "emit one JSON access-log line per request")
	accessLogFile := flag.String("access-log-file", "",
		"append access-log lines to this file instead of stderr")
	reqTimeout := flag.Duration("request-timeout", 0,
		"per-request deadline: cancel any request (and its encode/decode pipeline) running longer than this (0 disables)")
	maxObject := flag.Int64("max-object-size", 0,
		"reject PUT bodies larger than this many bytes with 413 (0 = unlimited)")
	shardReadTimeout := flag.Duration("shard-read-timeout", 0,
		"per-shard read deadline during GETs: a shard stalling past this is demoted and the read completes degraded (0 disables)")
	tuneCache := flag.String("tune-cache", "",
		"autotuner cache file: learned kernel schedules are loaded at boot and persisted after every background retune and on shutdown (empty = in-memory only)")
	tuneTrials := flag.Int("tune-trials", 16,
		"schedule-search budget per background retune of a hot stripe geometry (0 disables the serving-loop autotuner)")
	tuneIdle := flag.Duration("tune-idle", 0,
		"how long the encode/decode scheduler must sit idle before a background retune may start (0 = 100ms)")
	decoderCache := flag.Int("decoder-cache", 0,
		"max compiled decoders cached per code, LRU-evicted (0 = library default of 16)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second,
		"how long a connection may take to send its request headers (slowloris guard; 0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute,
		"how long an idle keep-alive connection is held open (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 0,
		"hard cap on writing one whole response; 0 (default) leaves large streaming GETs unbounded — prefer -request-timeout")
	peers := flag.String("peers", "",
		"cluster membership as id=url pairs (\"0=http://a:8080,1=http://b:8080,...\"); enables cluster mode")
	peersFile := flag.String("peers-file", "",
		"file with one id=url member per line (# comments); enables cluster mode")
	peerID := flag.Int("peer-id", -1, "this process's member id in the cluster (required with -peers/-peers-file)")
	clusterSecret := flag.String("cluster-secret", "",
		"shared secret authenticating the internal peer API (empty disables auth — trusted networks only)")
	writeQuorum := flag.Int("write-quorum", 1,
		"q in the k+q shard acks a cluster PUT needs to commit (clamped to [0, r])")
	rebuildNode := flag.Int("rebuild-node", -1,
		"rebuild every shard this member id should hold, print the stats, and exit (cluster mode only; runs as a coordinator over HTTP — -root is not used)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *peers != "" || *peersFile != "" {
		clusterMain(logger, clusterOpts{
			addr: *addr, root: *root, k: *k, r: *r, unit: *unit,
			workers: *workers, maxQueue: *maxQueue,
			peers: *peers, peersFile: *peersFile, peerID: *peerID,
			secret: *clusterSecret, writeQuorum: *writeQuorum, rebuildNode: *rebuildNode,
			scrubEvery: *scrubEvery, drain: *drain, debugAddr: *debugAddr,
			slowReq: *slowReq, accessLog: *accessLog, accessLogFile: *accessLogFile,
			reqTimeout: *reqTimeout, maxObject: *maxObject,
			traceSample: *traceSample, traceRing: *traceRing,
			readHeaderTimeout: *readHeaderTimeout, idleTimeout: *idleTimeout, writeTimeout: *writeTimeout,
		})
		return
	}
	store, err := server.Open(server.StoreConfig{
		Root:             *root,
		Nodes:            *nodes,
		K:                *k,
		R:                *r,
		UnitSize:         *unit,
		Workers:          *workers,
		MaxStreams:       *maxQueue,
		SlabThreshold:    *slabThreshold,
		SlabWindow:       *slabWindow,
		SlabMaxBytes:     *slabMaxBytes,
		ShardReadTimeout: *shardReadTimeout,
		DecoderCache:     *decoderCache,
		TuneCache:        *tuneCache,
		TuneTrials:       *tuneTrials,
		TuneIdle:         *tuneIdle,
	})
	if err != nil {
		logger.Fatalf("ecserver: %v", err)
	}
	defer store.Close()
	if *tuneTrials > 0 {
		logger.Printf("ecserver: serving-loop autotuner on (trials=%d, cache=%q)", *tuneTrials, *tuneCache)
	}
	metrics := server.NewMetrics(nil)
	store.SetMetrics(metrics)
	obs.RegisterBuildInfo(metrics.Registry,
		obs.L("mode", "single"),
		obs.L("k", strconv.Itoa(*k)), obs.L("r", strconv.Itoa(*r)),
		obs.L("unit", strconv.Itoa(*unit)))
	tracer := obs.NewRecorder(obs.RecorderConfig{
		Capacity:    *traceRing,
		SampleEvery: *traceSample,
		Slow:        *slowReq,
	})
	logger.Printf("ecserver: serving %s on %s (k=%d r=%d unit=%d, %d node dirs)",
		*root, *addr, *k, *r, *unit, *nodes)

	var scrubber *server.Scrubber
	if *scrubEvery > 0 {
		scrubber = server.StartScrubber(store, *scrubEvery, logger.Printf)
		logger.Printf("ecserver: background scrubber every ~%v (jittered)", *scrubEvery)
	}

	hcfg := server.Config{
		Logf:                 logger.Printf,
		Metrics:              metrics,
		Tracer:               tracer,
		Scrubber:             scrubber,
		SlowRequestThreshold: *slowReq,
		RequestTimeout:       *reqTimeout,
		MaxObjectSize:        *maxObject,
	}
	if *accessLog {
		dst := os.Stderr
		if *accessLogFile != "" {
			f, err := os.OpenFile(*accessLogFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				logger.Fatalf("ecserver: %v", err)
			}
			defer f.Close()
			dst = f
		}
		hcfg.AccessLog = obs.NewLogger(dst)
	}

	if *debugAddr != "" {
		// pprof lives on its own mux and listener: the DefaultServeMux
		// registrations net/http/pprof does at init are deliberately not
		// served, so the data-plane port never exposes profiling.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metricsz", metrics.Registry.Handler())
		dbg.Handle("/tracez", tracer.Handler())
		go func() {
			logger.Printf("ecserver: debug mux (pprof, metricsz, tracez) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Printf("ecserver: debug mux: %v", err)
			}
		}()
	}

	// baseCtx is the ancestor of every request context; canceling it at
	// drain-deadline time makes still-running pipelines stop between
	// stripes instead of racing srv.Close's connection teardown.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.NewHandler(store, hcfg),
		// Slowloris guard: a connection that trickles its headers cannot
		// pin a goroutine forever. WriteTimeout defaults to 0 because it
		// would cap whole streaming GETs regardless of progress; the
		// per-request deadline (-request-timeout) is the progress-aware
		// bound.
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Fatalf("ecserver: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests, then let
	// any in-flight scrub sweep complete so no shard is left half-healed.
	// If the drain deadline passes, cancel the base context — every
	// in-flight request's pipeline stops between stripes and cleans up —
	// and close whatever connections remain.
	logger.Printf("ecserver: shutting down, draining in-flight requests (timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("ecserver: drain incomplete (%v), canceling in-flight requests", err)
		cancelBase()
		srv.Close()
	}
	if scrubber != nil {
		scrubber.Stop()
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "ecserver: exiting — %d objects, %d puts, %d gets (%d degraded), %d shards healed\n",
		st.Objects, st.Puts, st.Gets, st.DegradedGets, st.ShardsHealed)
}
