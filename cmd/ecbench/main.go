// Command ecbench regenerates the tables and figures of "Rethinking
// Erasure-Coding Libraries in the Age of Optimized Machine Learning"
// (HotStorage '24) on this machine. Each experiment ID corresponds to one
// row of the per-experiment index in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured outcomes.
//
// Usage:
//
//	ecbench -list
//	ecbench -exp f2
//	ecbench -exp all -quick
//	ecbench -exp f2,memcpy -unit 65536 -mintime 100ms -trials 20
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gemmec/internal/bench"
)

func main() {
	var (
		expList = flag.String("exp", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "quick smoke-scale configuration")
		unit    = flag.Int("unit", 0, "override unit size in bytes")
		minTime = flag.Duration("mintime", 0, "override per-measurement wall budget")
		trials  = flag.Int("trials", -1, "override autotune trials (0 = pretuned default schedule)")
		samples = flag.Int("latency-samples", 0, "override latency sample count")
		seed    = flag.Int64("seed", 0, "override workload/tuning seed")
		jsonOut = flag.String("json", "", "also write machine-readable results to this file (decode-json)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %-52s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if *expList == "" {
		fmt.Fprintln(os.Stderr, "ecbench: -exp required (or -list); e.g. -exp f2 or -exp all")
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *unit > 0 {
		cfg.UnitSize = *unit
	}
	if *minTime > 0 {
		cfg.MinTime = *minTime
	}
	if *trials >= 0 {
		cfg.TuneTrials = *trials
	}
	if *samples > 0 {
		cfg.LatencySamples = *samples
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *jsonOut != "" {
		cfg.JSONPath = *jsonOut
	}

	var exps []bench.Experiment
	if *expList == "all" {
		exps = bench.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecbench:", err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	fmt.Printf("# gemmec experiment harness\n")
	fmt.Printf("# %s/%s, %d cpus, unit=%d bytes, mintime=%v, tune-trials=%d\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), cfg.UnitSize, cfg.MinTime, cfg.TuneTrials)

	start := time.Now()
	for _, e := range exps {
		fmt.Printf("=== %s (%s)\n", e.ID, e.Paper)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ecbench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	fmt.Printf("# total wall time %v\n", time.Since(start).Round(time.Millisecond))
}
