// Command ectune autotunes a gemmec kernel schedule for one erasure-code
// geometry and optionally persists it to a tuning cache (the equivalent of
// a TVM tuning log). Storage systems run this once per machine and ship
// the cache; gemmec.New(..., WithTuningCache(path)) then picks the tuned
// schedule up with no construction-time cost.
//
// Usage:
//
//	ectune -k 10 -r 4 -unit 131072 -trials 200 -cache tune.json
//	ectune -k 10 -r 4 -strategy random -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gemmec/internal/autotune"
	"gemmec/internal/bitmatrix"
	"gemmec/internal/gf"
	"gemmec/internal/matrix"
)

func main() {
	var (
		k        = flag.Int("k", 10, "data units")
		r        = flag.Int("r", 4, "parity units")
		w        = flag.Int("w", 8, "field word size")
		unit     = flag.Int("unit", 128<<10, "unit size in bytes")
		trials   = flag.Int("trials", 100, "measurement trials")
		strategy = flag.String("strategy", "evolutionary", "search strategy: random | evolutionary | grid")
		cacheP   = flag.String("cache", "", "tuning cache JSON file to update")
		logP     = flag.String("log", "", "write the full trial history as a JSON-lines tuning log")
		seed     = flag.Int64("seed", 1, "search seed")
		verbose  = flag.Bool("v", false, "print every trial")
	)
	flag.Parse()

	strat := map[string]autotune.Strategy{
		"random":       autotune.StrategyRandom,
		"evolutionary": autotune.StrategyEvolutionary,
		"grid":         autotune.StrategyGrid,
	}
	st, ok := strat[*strategy]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	layout, err := bitmatrix.NewLayout(*k, *r, *w, *unit)
	if err != nil {
		fatal(err)
	}
	f, err := gf.NewField(uint(*w))
	if err != nil {
		fatal(err)
	}
	coding, err := matrix.CauchyGood(f, *r, *k)
	if err != nil {
		fatal(err)
	}
	bm := bitmatrix.FromGF(coding)
	m, kDim, n := layout.ParityPlanes(), layout.DataPlanes(), layout.PlaneSize/8

	tuner, err := autotune.NewTuner(m, kDim, n, bm.At, *seed)
	if err != nil {
		fatal(err)
	}
	space := tuner.Space()
	fmt.Printf("tuning k=%d r=%d w=%d unit=%d: GEMM %dx%dx%d, space of %d schedules, %d trials (%s)\n",
		*k, *r, *w, *unit, m, kDim, n, space.Size(), *trials, *strategy)

	res, err := tuner.Tune(st, *trials)
	if err != nil {
		fatal(err)
	}
	bytesPerOp := *k * *unit
	if *verbose {
		for i, tr := range res.History {
			fmt.Printf("  trial %3d: %-55v %8.3f GB/s (best %.3f)\n", i+1, tr.Params,
				autotune.GBps(bytesPerOp, tr.Elapsed), autotune.GBps(bytesPerOp, tr.BestSoFar))
		}
	}
	fmt.Printf("best schedule: %v\n", res.Best)
	fmt.Printf("best throughput: %.3f GB/s (%v per stripe)\n", autotune.GBps(bytesPerOp, res.BestTime), res.BestTime)

	if *cacheP != "" {
		cache, err := autotune.LoadCache(*cacheP)
		if err != nil {
			fatal(err)
		}
		key := autotune.Key(m, kDim, n, runtime.GOMAXPROCS(0))
		cache.Put(key, autotune.Record{
			M: m, K: kDim, N: n,
			Params: res.Best, Elapsed: res.BestTime, Trials: len(res.History),
		})
		if err := cache.Save(*cacheP); err != nil {
			fatal(err)
		}
		fmt.Printf("saved to %s under key %q\n", *cacheP, key)
	}
	if *logP != "" {
		f, err := os.Create(*logP)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteLog(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-trial tuning log to %s\n", len(res.History), *logP)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ectune:", err)
	os.Exit(1)
}
