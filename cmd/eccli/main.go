// Command eccli erasure-codes files on disk through the public gemmec API
// and the internal/shardfile shard-set layout: encode splits a file into k
// data shards plus r parity shards, repair rebuilds missing shard files,
// verify checks stripe consistency, and decode reassembles the file
// (reconstructing on the fly if shards are missing).
//
// Usage:
//
//	eccli encode -in big.bin -dir shards/ -k 10 -r 4
//	rm shards/shard_003 shards/shard_007          # simulate disk failures
//	eccli repair -dir shards/
//	eccli verify -dir shards/
//	eccli decode -dir shards/ -out restored.bin
//
// encode and decode accept -stream-workers N to stream the file through
// the pipelined engine with N concurrent kernel workers instead of
// buffering it in memory (and print the pipeline's stall breakdown).
//
// eccli is also the client for the ecserver daemon (cmd/ecserver): put
// uploads a file as a named object and get streams it back, reporting when
// the server had to serve a degraded read:
//
//	eccli put -server http://localhost:8080 -name big.bin -in big.bin
//	eccli get -server http://localhost:8080 -name big.bin -out restored.bin
//
// Every failure — including a stream decode failing mid-file — exits
// non-zero with a wrapped, classifiable error on stderr, so all commands
// are scriptable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gemmec"
	"gemmec/internal/obs"
	"gemmec/internal/shardfile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "scrub":
		err = cmdScrub(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	case "put":
		err = cmdPut(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	case "patch":
		err = cmdPatch(os.Args[2:], false)
	case "append":
		err = cmdPatch(os.Args[2:], true)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eccli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: eccli {encode|repair|verify|scrub|decode|put|get|patch|append} [flags]")
	os.Exit(2)
}

func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("scrub: -dir required")
	}
	healed, err := shardfile.Scrub(*dir)
	if err != nil {
		return err
	}
	if len(healed) == 0 {
		fmt.Println("no corruption found")
		return nil
	}
	fmt.Printf("healed %d shard(s): %v\n", len(healed), healed)
	return nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dir := fs.String("dir", "", "output shard directory")
	k := fs.Int("k", 10, "data shards")
	r := fs.Int("r", 4, "parity shards")
	unit := fs.Int("unit", 128<<10, "unit size in bytes")
	workers := fs.Int("stream-workers", 0,
		"stream the file through N concurrent encode workers instead of buffering it in memory (0 = in-memory path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("encode: -in and -dir required")
	}
	if *workers > 0 {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		m, st, err := shardfile.WriteStream(*dir, f, fi.Size(), *k, *r, *unit, *workers)
		if err != nil {
			return err
		}
		fmt.Printf("encoded %d bytes into %d+%d shards x %d stripes under %s\n",
			m.FileSize, m.K, m.R, m.Stripes, *dir)
		printStats(st)
		return nil
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	m, err := shardfile.Write(*dir, raw, *k, *r, *unit)
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d bytes into %d+%d shards x %d stripes under %s\n",
		len(raw), m.K, m.R, m.Stripes, *dir)
	return nil
}

// printStats summarizes a streaming run's pipeline statistics: where the
// time went (kernel vs I/O) tells the operator whether more -stream-workers
// would help.
func printStats(st gemmec.StreamStats) {
	fmt.Printf("pipeline: %d workers depth %d, %d stripes in %v (read stall %v, encode stall %v, write stall %v)\n",
		st.Workers, st.Depth, st.Stripes, st.Elapsed, st.ReadStall, st.EncodeStall, st.WriteStall)
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("repair: -dir required")
	}
	rebuilt, err := shardfile.Repair(*dir)
	if err != nil {
		return err
	}
	if len(rebuilt) == 0 {
		fmt.Println("all shards present; nothing to repair")
		return nil
	}
	fmt.Printf("repaired %d shard(s): %v\n", len(rebuilt), rebuilt)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify: -dir required")
	}
	if err := shardfile.Verify(*dir); err != nil {
		return err
	}
	m, err := shardfile.LoadManifest(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("verified %d stripes: OK\n", m.Stripes)
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file")
	workers := fs.Int("stream-workers", 0,
		"stream the shard set through N concurrent reconstruction workers instead of buffering it in memory (0 = in-memory path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *out == "" {
		return fmt.Errorf("decode: -dir and -out required")
	}
	if *workers > 0 {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		m, missing, st, err := shardfile.ReadStream(*dir, f, *workers)
		if err != nil {
			// The output file holds a partial, useless prefix; remove it so
			// scripts cannot mistake it for a successful decode, and wrap the
			// cause so errors.Is classification (ErrTooFewShards,
			// ErrCorruptShard, ...) survives to the caller.
			f.Close()
			os.Remove(*out)
			return fmt.Errorf("decode: stream decode of %s failed mid-file: %w", *dir, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("decoded %d bytes to %s (reconstructed from losses: %v)\n", m.FileSize, *out, missing)
		printStats(st)
		return nil
	}
	data, rebuilt, err := shardfile.Read(*dir)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes to %s (reconstructed shards: %v)\n", len(data), *out, rebuilt)
	return nil
}

// cliContext is the lifetime of one server-talking command: Ctrl-C (or
// SIGTERM) cancels it, and -timeout (when positive) bounds it. The
// returned context rides the HTTP request, so canceling mid-transfer
// tears the connection down and the server abandons the request's
// pipeline instead of encoding for a client that left.
func cliContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// objectURL joins the server base URL and the object name.
func objectURL(server, name string) (string, error) {
	if server == "" {
		return "", fmt.Errorf("-server required (e.g. http://localhost:8080)")
	}
	if name == "" {
		return "", fmt.Errorf("-name required")
	}
	return strings.TrimSuffix(server, "/") + "/o/" + url.PathEscape(name), nil
}

// httpError turns a non-2xx response into an error carrying the server's
// message.
func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("%s: server returned %s: %s", op, resp.Status, strings.TrimSpace(string(body)))
}

// doRetry429 runs build to make a fresh request and sends it, honoring
// admission-control shedding: a 429 response is retried up to retries
// times, sleeping whatever the server's Retry-After header asks (default
// 1s) between attempts. Only 429 is retried here — transport errors and
// other statuses keep their original fail-fast behavior — and build runs
// once per attempt so a retried PUT re-reads its (rewound) body.
func doRetry429(ctx context.Context, retries int, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
			return resp, nil
		}
		delay := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "eccli: server overloaded (429), retrying in %v (attempt %d of %d)\n",
			delay, attempt+1, retries)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// putResponse mirrors the server's PUT reply; Stats carries the encode
// pipeline's accounting for -v.
type putResponse struct {
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	Stripes int    `json:"stripes"`
	Stats   *struct {
		Stripes     int64  `json:"stripes"`
		ReadStall   string `json:"read_stall"`
		EncodeStall string `json:"encode_stall"`
		WriteStall  string `json:"write_stall"`
		Elapsed     string `json:"elapsed"`
		Demoted     int    `json:"demoted"`
	} `json:"stats"`
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	server := fs.String("server", "", "ecserver base URL")
	name := fs.String("name", "", "object name")
	in := fs.String("in", "", "input file (default: stdin)")
	verbose := fs.Bool("v", false, "print the server's stream statistics to stderr")
	timeout := fs.Duration("timeout", 0, "abort the upload after this long (0 = no deadline; Ctrl-C always cancels)")
	retries := fs.Int("retries", 3,
		"retry a 429-shed request this many times, honoring the server's Retry-After (stdin uploads never retry: the body cannot be replayed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := objectURL(*server, *name)
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	ctx, cancel := cliContext(*timeout)
	defer cancel()
	var f *os.File
	size := int64(-1)
	if *in != "" {
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		size = fi.Size()
	} else {
		// A stdin body cannot be rewound for a second attempt.
		*retries = 0
	}
	resp, err := doRetry429(ctx, *retries, func() (*http.Request, error) {
		src := io.Reader(os.Stdin)
		if f != nil {
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, err
			}
			src = f
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, src)
		if err != nil {
			return nil, err
		}
		req.ContentLength = size
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return httpError("put", resp)
	}
	var pr putResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil && *verbose {
		fmt.Fprintf(os.Stderr, "eccli: cannot parse put response: %v\n", err)
	}
	io.Copy(io.Discard, resp.Body)
	fmt.Printf("put %q to %s\n", *name, *server)
	if *verbose {
		if id := resp.Header.Get("X-Gemmec-Request-Id"); id != "" {
			fmt.Fprintf(os.Stderr, "eccli: request id %s\n", id)
		}
		printTraceURL(*server, resp)
		if st := pr.Stats; st != nil {
			fmt.Fprintf(os.Stderr,
				"eccli: server encode: %d stripes in %s (read stall %s, encode stall %s, write stall %s)\n",
				st.Stripes, st.Elapsed, st.ReadStall, st.EncodeStall, st.WriteStall)
		}
	}
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	server := fs.String("server", "", "ecserver base URL")
	name := fs.String("name", "", "object name")
	out := fs.String("out", "", "output file (default: stdout)")
	verbose := fs.Bool("v", false, "print the stream's trailer statistics (stalls, demotions) to stderr")
	rng := fs.String("range", "",
		"byte range to fetch: \"a-b\" (inclusive), \"a-\" (from a to end) or \"-n\" (final n bytes); sent as an HTTP Range request")
	timeout := fs.Duration("timeout", 0, "abort the download after this long (0 = no deadline; Ctrl-C always cancels)")
	retries := fs.Int("retries", 3,
		"retry a 429-shed request this many times, honoring the server's Retry-After")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := objectURL(*server, *name)
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	ctx, cancel := cliContext(*timeout)
	defer cancel()
	resp, err := doRetry429(ctx, *retries, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		if *rng != "" {
			req.Header.Set("Range", "bytes="+*rng)
		}
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	defer resp.Body.Close()
	// A ranged request normally answers 206; a server without range
	// support answers 200 with the full body, which is still a correct
	// (if bigger) response, so both are accepted.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return httpError("get", resp)
	}
	if *rng != "" && resp.StatusCode == http.StatusOK {
		fmt.Fprintln(os.Stderr, "eccli: server ignored the range request; fetching the whole object")
	}
	dst := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	n, err := io.Copy(dst, resp.Body)
	if err != nil {
		// Mid-body failure: the server hit an unrecoverable decode (or the
		// connection died) after the headers. Never leave a partial file
		// behind looking like a success.
		if f != nil {
			f.Close()
			os.Remove(*out)
		}
		return fmt.Errorf("get: stream decode of %q failed mid-file after %d bytes: %w", *name, n, err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	// The headers carry the open-time state; the trailers (available only
	// now, after the body) carry the final truth, including shards the
	// server demoted mid-stream while verifying units inside the decode.
	degraded := resp.Header.Get("X-Gemmec-Degraded") == "true"
	reconstructed := resp.Header.Get("X-Gemmec-Reconstructed")
	if v := resp.Trailer.Get("X-Gemmec-Degraded"); v != "" {
		degraded = v == "true"
	}
	if v := resp.Trailer.Get("X-Gemmec-Reconstructed"); v != "" {
		reconstructed = v
	}
	if degraded {
		fmt.Fprintf(os.Stderr, "eccli: degraded read: server reconstructed shard(s) %s\n", reconstructed)
	}
	if *verbose {
		if id := resp.Header.Get("X-Gemmec-Request-Id"); id != "" {
			fmt.Fprintf(os.Stderr, "eccli: request id %s\n", id)
		}
		printTraceURL(*server, resp)
		if cr := resp.Header.Get("Content-Range"); cr != "" {
			fmt.Fprintf(os.Stderr, "eccli: served %s\n", cr)
		}
		fmt.Fprintf(os.Stderr,
			"eccli: server decode: %s stripes (read stall %s, decode stall %s, write stall %s)\n",
			orDash(resp.Trailer.Get("X-Gemmec-Stripes")),
			orDash(resp.Trailer.Get("X-Gemmec-Stall-Read")),
			orDash(resp.Trailer.Get("X-Gemmec-Stall-Encode")),
			orDash(resp.Trailer.Get("X-Gemmec-Stall-Write")))
		if d := resp.Trailer.Get("X-Gemmec-Demoted"); d != "" {
			fmt.Fprintf(os.Stderr, "eccli: server demoted %s shard(s) mid-stream\n", d)
		}
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "got %d bytes to %s\n", n, *out)
	}
	return nil
}

// patchResponse mirrors the server's PATCH reply.
type patchResponse struct {
	Name           string `json:"name"`
	Size           int64  `json:"size"`
	Length         int    `json:"length"`
	Stripes        int    `json:"stripes"`
	Offset         int64  `json:"offset"`
	InPlace        bool   `json:"in_place"`
	TouchedStripes int    `json:"touched_stripes"`
	DataBytes      int64  `json:"data_bytes"`
	ParityBytes    int64  `json:"parity_bytes"`
	Fallback       string `json:"fallback"`
}

// cmdPatch implements both the patch verb (splice bytes at -at) and the
// append verb (add bytes at the end). The body is read fully up front:
// PATCH bodies are small writes by design (the server bounds them), and
// the length is needed for the Content-Range header anyway.
func cmdPatch(args []string, appendMode bool) error {
	verb := "patch"
	if appendMode {
		verb = "append"
	}
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	server := fs.String("server", "", "ecserver base URL")
	name := fs.String("name", "", "object name")
	in := fs.String("in", "", "input file (default: stdin)")
	var at *int64
	if !appendMode {
		at = fs.Int64("at", -1, "byte offset to splice the body at (required; may not exceed the object's size)")
	}
	verbose := fs.Bool("v", false, "print the server's patch accounting to stderr")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no deadline; Ctrl-C always cancels)")
	retries := fs.Int("retries", 3,
		"retry a 429-shed request this many times, honoring the server's Retry-After")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := objectURL(*server, *name)
	if err != nil {
		return fmt.Errorf("%s: %w", verb, err)
	}
	if !appendMode && *at < 0 {
		return fmt.Errorf("patch: -at required (use the append verb to write at the end)")
	}
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	data, err := io.ReadAll(src)
	if err != nil {
		return fmt.Errorf("%s: reading input: %w", verb, err)
	}
	if len(data) == 0 && !appendMode {
		return fmt.Errorf("patch: empty input")
	}
	ctx, cancel := cliContext(*timeout)
	defer cancel()
	resp, err := doRetry429(ctx, *retries, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPatch, u, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.ContentLength = int64(len(data))
		if appendMode {
			req.Header.Set("X-Gemmec-Append", "true")
		} else {
			req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/*", *at, *at+int64(len(data))-1))
		}
		return req, nil
	})
	if err != nil {
		return fmt.Errorf("%s: %w", verb, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(verb, resp)
	}
	var pr patchResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return fmt.Errorf("%s: cannot parse response: %w", verb, err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	switch {
	case pr.Fallback != "":
		fmt.Printf("%sed %q: %d bytes at offset %d (object re-encoded: %s fallback), now %d bytes\n",
			verb, *name, pr.Length, pr.Offset, pr.Fallback, pr.Size)
	default:
		fmt.Printf("%sed %q: %d bytes at offset %d in place (%d of %d stripes touched), now %d bytes\n",
			verb, *name, pr.Length, pr.Offset, pr.TouchedStripes, pr.Stripes, pr.Size)
	}
	if *verbose {
		if id := resp.Header.Get("X-Gemmec-Request-Id"); id != "" {
			fmt.Fprintf(os.Stderr, "eccli: request id %s\n", id)
		}
		printTraceURL(*server, resp)
		fmt.Fprintf(os.Stderr, "eccli: server wrote %d data + %d parity bytes\n",
			pr.DataBytes, pr.ParityBytes)
	}
	return nil
}

// printTraceURL points -v output at the server's recorded span waterfall
// when this request was traced (the server sets X-Gemmec-Trace only on
// requests it head-sampled into the /tracez flight recorder).
func printTraceURL(server string, resp *http.Response) {
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "eccli: trace %s/tracez?trace=%s\n",
		strings.TrimRight(server, "/"), id)
}

// orDash substitutes "-" for trailer values an older server did not send.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
