package gemmec

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"gemmec/internal/pipeline"
	"gemmec/internal/stripe"
)

// Streaming interface: encode an arbitrary-length stream into k+r shard
// streams and read it back, reconstructing from parity when data shard
// streams are missing. Stripes flow through a pipelined engine
// (internal/pipeline): a bounded ring of pooled stripe buffers is filled
// by a reader stage, encoded (or reconstructed) by a configurable number
// of concurrent kernel workers, and drained by an in-order writer, so the
// compiled kernel (§5's integration argument) is never idle behind serial
// I/O. Shard output is byte-identical regardless of worker count: the
// writer reorders stripes by sequence number.

// StreamStats reports what one stream call did and where it waited; see
// the field docs for how to read the stall times. Request it with
// WithStreamStats. Demoted lists the shards DecodeStream stopped trusting
// mid-stream (see WithStreamVerifier).
type StreamStats = pipeline.Stats

// UnitVerifier checks one shard unit as the decode reader gathers it; see
// WithStreamVerifier. Returning a non-nil error demotes the shard to
// erased from that stripe on.
type UnitVerifier = pipeline.UnitVerifier

// streamConfig collects StreamOption state.
type streamConfig struct {
	workers int
	depth   int
	sched   *Scheduler
	pool    *StripePool
	stats   *StreamStats
	verify  UnitVerifier
	ctx     context.Context
}

var errNilScheduler = fmt.Errorf("gemmec: stream scheduler is nil")

// StreamOption configures EncodeStream and DecodeStream. The zero-option
// call form uses the defaults documented on each option.
type StreamOption func(*streamConfig) error

// WithStreamWorkers sets how many stripes are encoded (or reconstructed)
// concurrently. 1 selects the serial path (no goroutines). The default is
// GOMAXPROCS capped at 8.
//
// Deprecated: worker count is a process resource, not a stream detail.
// With n > 1 the stream builds a private per-call scheduler (a pool that
// lives and dies with the call) — exactly the setup/teardown cost and
// CPU oversubscription WithStreamScheduler exists to amortize. Share one
// NewScheduler pool across streams instead; WithStreamWorkers is ignored
// when a scheduler is attached. Zero-option calls and n == 1 (the serial
// path) behave byte-identically to previous releases and stay supported.
func WithStreamWorkers(n int) StreamOption {
	return func(c *streamConfig) error {
		if n < 1 {
			return fmt.Errorf("gemmec: stream workers must be >= 1, have %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithStreamDepth sets the pipeline depth: the maximum number of stripe
// buffers in flight between the reader and the in-order writer. It is
// clamped up to the worker count. The default is twice the worker count.
//
// Deprecated: depth still works — it bounds the stream's stripe ring
// under WithStreamScheduler too — but tuning it per call predates the
// shared-scheduler API and the default is right in practice. Kept as a
// compatibility shim alongside WithStreamWorkers.
func WithStreamDepth(n int) StreamOption {
	return func(c *streamConfig) error {
		if n < 1 {
			return fmt.Errorf("gemmec: stream depth must be >= 1, have %d", n)
		}
		c.depth = n
		return nil
	}
}

// WithStreamPool supplies the stripe-buffer pool the pipeline draws its
// ring from. The pool must come from NewStreamPool (geometry (k+r) x
// UnitSize). Sharing one pool across repeated or concurrent stream calls
// on the same code makes steady-state streaming allocation-free. By
// default each call uses a private pool.
func WithStreamPool(p *StripePool) StreamOption {
	return func(c *streamConfig) error {
		if p == nil {
			return fmt.Errorf("gemmec: stream pool is nil")
		}
		c.pool = p
		return nil
	}
}

// WithStreamStats records the call's pipeline statistics into *dst before
// returning (on success and on error alike).
func WithStreamStats(dst *StreamStats) StreamOption {
	return func(c *streamConfig) error {
		if dst == nil {
			return fmt.Errorf("gemmec: stream stats destination is nil")
		}
		c.stats = dst
		return nil
	}
}

// WithStreamVerifier makes DecodeStream verify every shard unit against v
// as the reader gathers it — integrity checking folded into the single
// decode pass, instead of a separate whole-shard hashing pass up front. A
// unit that fails is not served: its shard is demoted to erased from that
// stripe on and reconstructed around for the rest of the stream (the
// stream only fails, wrapping ErrShardDemoted and ErrTooFewShards, when
// fewer than k trusted shards remain). Demotions are reported in
// StreamStats.Demoted. EncodeStream ignores the option.
func WithStreamVerifier(v UnitVerifier) StreamOption {
	return func(c *streamConfig) error {
		if v == nil {
			return fmt.Errorf("gemmec: stream verifier is nil")
		}
		c.verify = v
		return nil
	}
}

// WithStreamContext cancels the stream when ctx does. The pipeline
// observes the context between stripes: a canceled encode stops reading
// and writing, a canceled decode stops reconstructing, all stage
// goroutines return, and the call fails with an error wrapping
// context.Cause(ctx) (so errors.Is against context.Canceled or
// context.DeadlineExceeded works). This is how a server threads a
// request's lifetime — client disconnect, per-request deadline, drain —
// down into the coding engine instead of letting abandoned streams run to
// completion. The default is context.Background(): never canceled.
func WithStreamContext(ctx context.Context) StreamOption {
	return func(c *streamConfig) error {
		if ctx == nil {
			return fmt.Errorf("gemmec: stream context is nil")
		}
		c.ctx = ctx
		return nil
	}
}

// NewStreamPool returns a stripe-buffer pool sized for this code's
// streaming pipeline: each buffer holds a full stripe, the k data units
// followed by the r parity units. Pass it to WithStreamPool.
func (c *Code) NewStreamPool() (*StripePool, error) {
	return stripe.NewPool(c.K()+c.R(), c.UnitSize())
}

func (c *Code) streamConfig(opts []StreamOption) (streamConfig, error) {
	cfg := streamConfig{}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	if cfg.workers == 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
		if cfg.workers > 8 {
			cfg.workers = 8
		}
	}
	if cfg.depth == 0 {
		cfg.depth = 2 * cfg.workers
	}
	return cfg, nil
}

func (cfg streamConfig) pipeline() pipeline.Config {
	pc := pipeline.Config{Workers: cfg.workers, Depth: cfg.depth, Pool: cfg.pool, Verify: cfg.verify, Ctx: cfg.ctx}
	if cfg.sched != nil {
		pc.Sched = cfg.sched.s
	}
	return pc
}

// EncodeStream reads src until EOF, erasure-codes it stripe by stripe, and
// writes unit i of every stripe to shards[i]. shards must hold exactly k+r
// writers, none nil. The final stripe is zero-padded; callers must record
// the true length (the returned byte count) to trim on decode.
//
// With the default options encoding is pipelined across GOMAXPROCS (up to
// 8) kernel workers; shard output is byte-identical to the serial path.
// Tune with WithStreamWorkers, WithStreamDepth, WithStreamPool, and
// observe the pipeline with WithStreamStats.
func (c *Code) EncodeStream(src io.Reader, shards []io.Writer, opts ...StreamOption) (int64, error) {
	k, r := c.K(), c.R()
	if len(shards) != k+r {
		return 0, fmt.Errorf("%w: have %d writers, want k+r=%d", ErrShardStreams, len(shards), k+r)
	}
	for i, w := range shards {
		if w == nil {
			return 0, fmt.Errorf("%w: writer %d is nil", ErrShardStreams, i)
		}
	}
	cfg, err := c.streamConfig(opts)
	if err != nil {
		return 0, err
	}
	n, st, err := pipeline.Encode(c, src, shards, cfg.pipeline())
	if cfg.stats != nil {
		*cfg.stats = st
	}
	return n, err
}

// DecodeStream reads shard streams and writes the original data to dst,
// stopping after size bytes (the length EncodeStream returned). shards must
// hold k+r readers; nil entries mark lost shards. At least k readers must
// be non-nil. Lost data shards are reconstructed stripe by stripe from the
// surviving streams.
//
// A shard stream that fails mid-decode — read error, truncation, or (with
// WithStreamVerifier) a unit checksum mismatch — is demoted to erased from
// that stripe on and reconstructed around, so the decode survives anything
// an up-front verification pass would have caught, without the extra pass
// or the whole-object latency barrier. Demotions are reported in
// StreamStats.Demoted; the stream fails (wrapping ErrShardDemoted and
// ErrTooFewShards) only when fewer than k trusted streams remain.
//
// Decoding runs through the same pipeline as encoding (see EncodeStream);
// the same StreamOptions apply.
func (c *Code) DecodeStream(shards []io.Reader, dst io.Writer, size int64, opts ...StreamOption) error {
	k, r := c.K(), c.R()
	if len(shards) != k+r {
		return fmt.Errorf("%w: have %d readers, want k+r=%d", ErrShardStreams, len(shards), k+r)
	}
	present := 0
	for _, rd := range shards {
		if rd != nil {
			present++
		}
	}
	if present < k {
		return fmt.Errorf("%w: only %d of %d shard streams present (need k=%d): %w",
			ErrShardStreams, present, k+r, k, ErrTooFewShards)
	}
	if size < 0 {
		return fmt.Errorf("gemmec: negative stream size %d", size)
	}
	cfg, err := c.streamConfig(opts)
	if err != nil {
		return err
	}
	st, err := pipeline.Decode(c, shards, dst, size, cfg.pipeline())
	if cfg.stats != nil {
		*cfg.stats = st
	}
	return err
}
