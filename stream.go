package gemmec

import (
	"errors"
	"fmt"
	"io"
)

// Streaming interface: encode an arbitrary-length stream into k+r shard
// streams and read it back, reconstructing from parity when data shard
// streams are missing. Stripes are assembled in a reusable contiguous
// buffer (§5's integration pattern), so the kernel always sees zero-copy
// operands.

// ErrShardStreams is returned for malformed shard stream slices.
var ErrShardStreams = errors.New("gemmec: bad shard streams")

// EncodeStream reads src until EOF, erasure-codes it stripe by stripe, and
// writes unit i of every stripe to shards[i]. shards must hold exactly k+r
// writers, none nil. The final stripe is zero-padded; callers must record
// the true length (the returned byte count) to trim on decode.
func (c *Code) EncodeStream(src io.Reader, shards []io.Writer) (int64, error) {
	k, r := c.K(), c.R()
	if len(shards) != k+r {
		return 0, fmt.Errorf("%w: have %d writers, want k+r=%d", ErrShardStreams, len(shards), k+r)
	}
	for i, w := range shards {
		if w == nil {
			return 0, fmt.Errorf("%w: writer %d is nil", ErrShardStreams, i)
		}
	}
	unit := c.UnitSize()
	data := make([]byte, c.DataSize())
	parity := make([]byte, c.ParitySize())

	var total int64
	for {
		n, err := io.ReadFull(src, data)
		total += int64(n)
		if errors.Is(err, io.EOF) {
			break // clean end on a stripe boundary
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			clear(data[n:])
			err = nil
		}
		if err != nil {
			return total, fmt.Errorf("gemmec: read source: %w", err)
		}
		if err := c.Encode(data, parity); err != nil {
			return total, err
		}
		for i := 0; i < k; i++ {
			if _, err := shards[i].Write(data[i*unit : (i+1)*unit]); err != nil {
				return total, fmt.Errorf("gemmec: write shard %d: %w", i, err)
			}
		}
		for i := 0; i < r; i++ {
			if _, err := shards[k+i].Write(parity[i*unit : (i+1)*unit]); err != nil {
				return total, fmt.Errorf("gemmec: write shard %d: %w", k+i, err)
			}
		}
		if n < len(data) {
			break // padded final stripe consumed the EOF
		}
	}
	return total, nil
}

// DecodeStream reads shard streams and writes the original data to dst,
// stopping after size bytes (the length EncodeStream returned). shards must
// hold k+r readers; nil entries mark lost shards. At least k readers must
// be non-nil. Lost data shards are reconstructed stripe by stripe from the
// surviving streams.
func (c *Code) DecodeStream(shards []io.Reader, dst io.Writer, size int64) error {
	k, r := c.K(), c.R()
	if len(shards) != k+r {
		return fmt.Errorf("%w: have %d readers, want k+r=%d", ErrShardStreams, len(shards), k+r)
	}
	present := 0
	for _, rd := range shards {
		if rd != nil {
			present++
		}
	}
	if present < k {
		return fmt.Errorf("%w: only %d of %d shard streams present (need k=%d)", ErrShardStreams, present, k+r, k)
	}
	if size < 0 {
		return fmt.Errorf("gemmec: negative stream size %d", size)
	}
	unit := c.UnitSize()
	stripeBytes := int64(c.DataSize())
	units := make([][]byte, k+r)
	buf := make([]byte, (k+r)*unit)
	for i := range units {
		units[i] = buf[i*unit : (i+1)*unit]
	}

	remaining := size
	for remaining > 0 {
		work := make([][]byte, k+r)
		anyLost := false
		for i, rd := range shards {
			if rd == nil {
				anyLost = true
				continue
			}
			if _, err := io.ReadFull(rd, units[i]); err != nil {
				return fmt.Errorf("gemmec: read shard %d: %w", i, err)
			}
			work[i] = units[i]
		}
		if anyLost {
			if err := c.ReconstructData(work); err != nil {
				return err
			}
		}
		n := stripeBytes
		if remaining < n {
			n = remaining
		}
		// Emit the data units of this stripe, trimming the final one.
		emitted := int64(0)
		for i := 0; i < k && emitted < n; i++ {
			take := int64(unit)
			if emitted+take > n {
				take = n - emitted
			}
			if _, err := dst.Write(work[i][:take]); err != nil {
				return fmt.Errorf("gemmec: write output: %w", err)
			}
			emitted += take
		}
		remaining -= n
	}
	return nil
}
