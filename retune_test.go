package gemmec

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"gemmec/internal/autotune"
)

// TestRetuneSwapsAndPersists: a bounded retune installs a new executor
// generation, reports its search, keeps the code byte-identical, and
// persists the learned schedule to the tuning cache.
func TestRetuneSwapsAndPersists(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "tune.json")
	c := newSmall(t, 4, 2, WithTuningCache(cacheFile))
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, c.DataSize())
	rng.Read(data)
	before := make([]byte, c.ParitySize())
	if err := c.Encode(data, before); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Retune(0, 1); err == nil {
		t.Error("Retune(0, ...) accepted a non-positive trial budget")
	}
	rep, err := c.Retune(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials <= 0 {
		t.Errorf("retune reports %d trials, want > 0", rep.Trials)
	}
	if rep.Generation != 1 || c.Generation() != 1 {
		t.Errorf("generation after one retune = %d (report %d), want 1", c.Generation(), rep.Generation)
	}
	if rep.PredictedGBps <= 0 || rep.MeasuredGBps <= 0 {
		t.Errorf("throughput report %.3f predicted / %.3f measured GB/s, want both > 0",
			rep.PredictedGBps, rep.MeasuredGBps)
	}
	// Serial-only search: a daemon's scheduler owns parallelism.
	if rep.Best.Parallel != "" {
		t.Errorf("retune picked parallel schedule %+v, want serial-only", rep.Best)
	}

	after := make([]byte, c.ParitySize())
	if err := c.Encode(data, after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("parity differs across a hot-swap: schedules must not change semantics")
	}

	cache, err := autotune.LoadCache(cacheFile)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("retune did not persist a record to the tuning cache")
	}
	// SaveTuning (the shutdown hook) must be a harmless re-save.
	if err := c.SaveTuning(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyScheduleHotSwap: an explicit legal schedule swaps in (bumping
// the generation) without changing encode output; an illegal one is
// rejected and leaves the live executor untouched.
func TestApplyScheduleHotSwap(t *testing.T) {
	c := newSmall(t, 4, 2)
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, c.DataSize())
	rng.Read(data)
	want := make([]byte, c.ParitySize())
	if err := c.Encode(data, want); err != nil {
		t.Fatal(err)
	}

	if err := c.ApplySchedule(Schedule{BlockBytes: 256, Fanin: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 1 {
		t.Errorf("generation = %d after one swap, want 1", c.Generation())
	}
	got := make([]byte, c.ParitySize())
	if err := c.Encode(data, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("parity differs after ApplySchedule")
	}

	if err := c.ApplySchedule(Schedule{BlockBytes: 12, Fanin: 2}); err == nil {
		t.Error("illegal schedule (block not multiple of 8) accepted")
	}
	if err := c.ApplySchedule(Schedule{BlockBytes: 1 << 30, Fanin: 2}); err == nil {
		t.Error("out-of-space schedule accepted")
	}
	if c.Generation() != 1 {
		t.Errorf("failed swaps moved the generation to %d, want 1", c.Generation())
	}
	if err := c.Encode(data, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("parity differs after rejected swaps")
	}
}

// TestWithDecoderCacheValidation pins the option's contract: positive
// bounds are accepted, zero and negative rejected.
func TestWithDecoderCacheValidation(t *testing.T) {
	if _, err := New(4, 2, WithDecoderCache(4)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1} {
		if _, err := New(4, 2, WithDecoderCache(n)); err == nil {
			t.Errorf("WithDecoderCache(%d) accepted, want error", n)
		}
	}
}
