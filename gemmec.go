// Package gemmec is an erasure-coding library built the way "Rethinking
// Erasure-Coding Libraries in the Age of Optimized Machine Learning"
// (HotStorage '24) proposes: the code is declared as a GEMM-shaped tensor
// expression — XOR for summation, AND for multiplication — and compiled and
// autotuned by an ML-style tensor compiler (internal/te + internal/autotune,
// this repository's stand-in for Apache TVM).
//
// # Quick start
//
//	code, err := gemmec.New(10, 4)                    // k=10 data, r=4 parity
//	data := make([]byte, code.DataSize())             // contiguous stripe
//	parity := make([]byte, code.ParitySize())
//	err = code.Encode(data, parity)
//
// Units are fixed-size (default 128 KiB, the paper's evaluation size); the
// data stripe holds the k units back to back. For chunk-at-a-time arrival,
// use NewStripeBuffer, which implements the contiguous-assembly pattern of
// §5 of the paper. To rebuild lost units, pass all k+r units with nil for
// the losses to Reconstruct.
package gemmec

import (
	"errors"
	"fmt"
	"sync"

	"gemmec/internal/autotune"
	"gemmec/internal/core"
	"gemmec/internal/stripe"
	"gemmec/internal/te"
)

// DefaultUnitSize is the unit size used when WithUnitSize is not given:
// 128 KiB, the size the paper's evaluation encodes.
const DefaultUnitSize = 128 << 10

// Schedule describes the compiled kernel's loop optimizations in public
// terms. It mirrors the autotuner's parameter space: cache tiling of the
// plane axis, multi-source XOR fusion on the reduction axis, traversal
// order, and multicore execution.
type Schedule struct {
	// BlockBytes is the cache tile of each parity plane processed per pass.
	BlockBytes int
	// Fanin is how many source planes are XORed per pass (1, 2, 4 or 8).
	Fanin int
	// TilesOuter walks tiles in the outer loop (sources stay cache-resident
	// across parity rows) rather than rows.
	TilesOuter bool
	// Staged accumulates each output tile in a local buffer and writes it
	// back once (TVM's cache_write).
	Staged bool
	// Parallel is "", "rows" or "tiles".
	Parallel string
	// Workers is the goroutine count when Parallel is set.
	Workers int
}

func (s Schedule) toParams() (autotune.Params, error) {
	if s.BlockBytes%8 != 0 {
		return autotune.Params{}, fmt.Errorf("gemmec: schedule block bytes %d must be a multiple of 8", s.BlockBytes)
	}
	p := autotune.Params{
		BlockWords: s.BlockBytes / 8,
		Fanin:      s.Fanin,
		RowsOuter:  !s.TilesOuter,
		Staged:     s.Staged,
		Workers:    s.Workers,
	}
	switch s.Parallel {
	case "":
		p.Parallel = te.ParallelNone
		if p.Workers == 0 {
			p.Workers = 1
		}
	case "rows":
		p.Parallel = te.ParallelRows
	case "tiles":
		p.Parallel = te.ParallelBlocks
	default:
		return autotune.Params{}, fmt.Errorf("gemmec: unknown parallel axis %q (want rows or tiles)", s.Parallel)
	}
	return p, nil
}

func fromParams(p autotune.Params) Schedule {
	s := Schedule{
		BlockBytes: p.BlockWords * 8,
		Fanin:      p.Fanin,
		TilesOuter: !p.RowsOuter,
		Staged:     p.Staged,
		Workers:    p.Workers,
	}
	switch p.Parallel {
	case te.ParallelRows:
		s.Parallel = "rows"
	case te.ParallelBlocks:
		s.Parallel = "tiles"
	}
	return s
}

type config struct {
	unitSize     int
	w            int
	construction core.Construction
	schedule     *Schedule
	tuneTrials   int
	cacheFile    string
	workers      int
	seed         int64
	decoderCache int
}

// Option configures New.
type Option func(*config) error

// WithUnitSize sets the unit size in bytes; it must be a positive multiple
// of 8*w.
func WithUnitSize(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return errors.New("gemmec: unit size must be positive")
		}
		c.unitSize = n
		return nil
	}
}

// WithWordSize sets the Galois field word size w (4, 8 or 16; default 8).
func WithWordSize(w int) Option {
	return func(c *config) error {
		c.w = w
		return nil
	}
}

// WithConstruction selects the generator family: "cauchy-good" (default),
// "cauchy", "cauchy-best" (ones-minimizing generator search) or
// "vandermonde".
func WithConstruction(name string) Option {
	return func(c *config) error {
		switch name {
		case "cauchy-good":
			c.construction = core.ConstructionCauchyGood
		case "cauchy":
			c.construction = core.ConstructionCauchy
		case "cauchy-best":
			c.construction = core.ConstructionCauchyBest
		case "vandermonde":
			c.construction = core.ConstructionVandermonde
		default:
			return fmt.Errorf("gemmec: unknown construction %q", name)
		}
		return nil
	}
}

// WithSchedule pins an explicit kernel schedule, bypassing tuning.
func WithSchedule(s Schedule) Option {
	return func(c *config) error {
		c.schedule = &s
		return nil
	}
}

// WithAutotune runs the schedule autotuner for the given number of trials
// at construction time (unless a tuning-cache hit already covers this
// geometry).
func WithAutotune(trials int) Option {
	return func(c *config) error {
		if trials <= 0 {
			return errors.New("gemmec: autotune trials must be positive")
		}
		c.tuneTrials = trials
		return nil
	}
}

// WithTuningCache persists and reuses tuned schedules in a JSON file, the
// equivalent of a TVM tuning log.
func WithTuningCache(path string) Option {
	return func(c *config) error {
		if path == "" {
			return errors.New("gemmec: tuning cache path empty")
		}
		c.cacheFile = path
		return nil
	}
}

// WithWorkers caps the goroutines parallel schedules use.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return errors.New("gemmec: workers must be positive")
		}
		c.workers = n
		return nil
	}
}

// WithSeed fixes the autotuner's random seed for reproducible tuning.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithDecoderCache bounds how many compiled per-erasure-pattern decode
// kernels the code keeps resident (LRU past the bound). The default of 16
// covers every single- and double-erasure pattern of common geometries;
// wide-geometry or multi-tenant servers can raise it to avoid recompiling
// churning failure sets.
func WithDecoderCache(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return errors.New("gemmec: decoder cache bound must be positive")
		}
		c.decoderCache = n
		return nil
	}
}

// Code is a systematic (k+r, k) erasure code with a compiled GEMM kernel.
// It is safe for concurrent use, including hot-swapping the kernel schedule
// (Retune, ApplySchedule) while Encode/Decode traffic is in flight.
type Code struct {
	eng     *core.Engine
	scratch sync.Pool // *[]byte stripes for the sharded APIs

	// Tuning-cache coordinates remembered from New so Retune and SaveTuning
	// can persist what they learn to the same file New would load at boot.
	cacheFile string
	cacheKey  string

	retuneMu sync.Mutex       // serializes Retune/SaveTuning, not the data path
	lastTune *autotune.Result // most recent Retune search, for SaveTuning
}

// New builds a code for k data units and r parity units.
func New(k, r int, opts ...Option) (*Code, error) {
	cfg := config{unitSize: DefaultUnitSize, w: 8}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	eopts := core.Options{
		W:                 cfg.w,
		Construction:      cfg.construction,
		TuneTrials:        cfg.tuneTrials,
		TuneStrategy:      autotune.StrategyEvolutionary,
		Workers:           cfg.workers,
		Seed:              cfg.seed,
		MaxCachedDecoders: cfg.decoderCache,
	}
	if cfg.schedule != nil {
		p, err := cfg.schedule.toParams()
		if err != nil {
			return nil, err
		}
		eopts.Params = &p
	}
	var cache *autotune.Cache
	if cfg.cacheFile != "" {
		var err error
		cache, err = autotune.LoadCache(cfg.cacheFile)
		if err != nil {
			return nil, err
		}
		eopts.Cache = cache
	}
	eng, err := core.New(k, r, cfg.unitSize, eopts)
	if err != nil {
		return nil, err
	}
	if cache != nil && eng.TuneResult() != nil {
		if err := cache.Save(cfg.cacheFile); err != nil {
			return nil, err
		}
	}
	return &Code{eng: eng, cacheFile: cfg.cacheFile, cacheKey: eng.TuneKey(cfg.workers)}, nil
}

// K returns the number of data units.
func (c *Code) K() int { return c.eng.K() }

// R returns the number of parity units.
func (c *Code) R() int { return c.eng.R() }

// W returns the Galois field word size.
func (c *Code) W() int { return c.eng.W() }

// UnitSize returns the unit size in bytes.
func (c *Code) UnitSize() int { return c.eng.UnitSize() }

// DataSize returns the contiguous data stripe size, k*UnitSize.
func (c *Code) DataSize() int { return c.eng.K() * c.eng.UnitSize() }

// ParitySize returns the contiguous parity stripe size, r*UnitSize.
func (c *Code) ParitySize() int { return c.eng.R() * c.eng.UnitSize() }

// Schedule returns the kernel schedule in use (tuned, cached, pinned or
// default).
func (c *Code) Schedule() Schedule { return fromParams(c.eng.Params()) }

// LoweredIR returns the compiled kernel's loop IR as text, for inspecting
// what the "compiler" did with the declaration.
func (c *Code) LoweredIR() (string, error) { return c.eng.LoweredIR() }

// Encode computes the parity stripe from a contiguous data stripe. This is
// the zero-copy fast path: both buffers are bound directly to the kernel.
func (c *Code) Encode(data, parity []byte) error { return c.eng.Encode(data, parity) }

// Verify recomputes parity and reports whether it matches.
func (c *Code) Verify(data, parity []byte) (bool, error) { return c.eng.Verify(data, parity) }

// EncodeShards encodes when units live in separate allocations: data is
// gathered into an internal contiguous stripe first (the copy §5 of the
// paper quantifies), parity is computed contiguously and scattered back to
// shards[k:]. shards must hold k+r slices of UnitSize bytes.
func (c *Code) EncodeShards(shards [][]byte) error {
	k, r, unit := c.K(), c.R(), c.UnitSize()
	if len(shards) != k+r {
		return fmt.Errorf("%w: %d shards, want k+r=%d", ErrShardCount, len(shards), k+r)
	}
	for i, s := range shards {
		if len(s) != unit {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), unit)
		}
	}
	buf := c.getScratch()
	defer c.scratch.Put(buf)
	stripeBuf := (*buf)[:c.DataSize()]
	parityBuf := (*buf)[c.DataSize() : c.DataSize()+c.ParitySize()]
	for i := 0; i < k; i++ {
		copy(stripeBuf[i*unit:], shards[i])
	}
	if err := c.eng.Encode(stripeBuf, parityBuf); err != nil {
		return err
	}
	for i := 0; i < r; i++ {
		copy(shards[k+i], parityBuf[i*unit:(i+1)*unit])
	}
	return nil
}

func (c *Code) getScratch() *[]byte {
	if v := c.scratch.Get(); v != nil {
		return v.(*[]byte)
	}
	b := make([]byte, c.DataSize()+c.ParitySize())
	return &b
}

// Reconstruct rebuilds every nil shard in place. shards holds the k data
// units followed by the r parity units; at least k must be non-nil.
func (c *Code) Reconstruct(shards [][]byte) error { return c.eng.Reconstruct(shards) }

// AccumulateParity adds data unit u's contribution to a zeroed parity
// stripe: feed all k units in any order (as they arrive from the network)
// and parity is complete, without ever buffering the full data stripe.
func (c *Code) AccumulateParity(parity []byte, u int, unit []byte) error {
	return c.eng.AccumulateParity(parity, u, unit)
}

// ReconstructData rebuilds only the nil *data* shards, leaving lost parity
// shards nil — cheaper for degraded reads that do not need parity back.
func (c *Code) ReconstructData(shards [][]byte) error { return c.eng.ReconstructData(shards) }

// UpdateParity adjusts parity in place for a small write: data unit u
// changed from oldUnit to newUnit. By linearity this costs one unit-sized
// kernel run instead of a full re-encode — the read-modify-write
// optimization parity-coded storage uses for small writes.
func (c *Code) UpdateParity(parity []byte, u int, oldUnit, newUnit []byte) error {
	return c.eng.UpdateParity(parity, u, oldUnit, newUnit)
}

// StripeBuffer accumulates k chunks into a contiguous data stripe; see
// internal/stripe for the §5 rationale.
type StripeBuffer = stripe.Buffer

// StripePool recycles StripeBuffers.
type StripePool = stripe.Pool

// NewStripeBuffer returns a stripe assembler matching this code's geometry.
func (c *Code) NewStripeBuffer() (*StripeBuffer, error) {
	return stripe.NewBuffer(c.K(), c.UnitSize())
}

// NewStripePool returns a pool of stripe buffers matching this code's
// geometry.
func (c *Code) NewStripePool() (*StripePool, error) {
	return stripe.NewPool(c.K(), c.UnitSize())
}
