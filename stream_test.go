package gemmec

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"
)

func streamRoundTrip(t *testing.T, c *Code, size int, lose []int) {
	t.Helper()
	src := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(src)

	sinks := make([]*bytes.Buffer, c.K()+c.R())
	writers := make([]io.Writer, len(sinks))
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	n, err := c.EncodeStream(bytes.NewReader(src), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("EncodeStream consumed %d, want %d", n, size)
	}
	// Every shard stream has the same length: stripes * unit.
	want := sinks[0].Len()
	for i, s := range sinks {
		if s.Len() != want {
			t.Fatalf("shard %d has %d bytes, shard 0 has %d", i, s.Len(), want)
		}
	}

	readers := make([]io.Reader, len(sinks))
	for i := range sinks {
		readers[i] = bytes.NewReader(sinks[i].Bytes())
	}
	for _, i := range lose {
		readers[i] = nil
	}
	var out bytes.Buffer
	if err := c.DecodeStream(readers, &out, n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatalf("size=%d lose=%v: decoded stream differs", size, lose)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	c := newSmall(t, 4, 2)
	stripe := c.DataSize()
	for _, size := range []int{0, 1, c.UnitSize(), stripe - 1, stripe, stripe + 1, 3*stripe + 1234} {
		streamRoundTrip(t, c, size, nil)
	}
}

func TestStreamDegradedDecode(t *testing.T) {
	c := newSmall(t, 4, 2)
	size := 2*c.DataSize() + 999
	for _, lose := range [][]int{{0}, {3}, {4}, {0, 5}, {1, 2}} {
		streamRoundTrip(t, c, size, lose)
	}
}

func TestStreamErrors(t *testing.T) {
	c := newSmall(t, 4, 2)
	var out bytes.Buffer

	if _, err := c.EncodeStream(bytes.NewReader(nil), make([]io.Writer, 3)); !errors.Is(err, ErrShardStreams) {
		t.Error("wrong writer count accepted")
	}
	ws := make([]io.Writer, 6)
	for i := 0; i < 5; i++ {
		ws[i] = &bytes.Buffer{}
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), ws); !errors.Is(err, ErrShardStreams) {
		t.Error("nil writer accepted")
	}

	if err := c.DecodeStream(make([]io.Reader, 3), &out, 0); !errors.Is(err, ErrShardStreams) {
		t.Error("wrong reader count accepted")
	}
	rs := make([]io.Reader, 6)
	rs[0] = bytes.NewReader(nil)
	if err := c.DecodeStream(rs, &out, 10); !errors.Is(err, ErrShardStreams) {
		t.Error("too few readers accepted")
	}
	full := make([]io.Reader, 6)
	for i := range full {
		full[i] = bytes.NewReader(nil)
	}
	if err := c.DecodeStream(full, &out, -1); err == nil {
		t.Error("negative size accepted")
	}
	// Truncated shard stream: decode must fail, not hang or corrupt.
	if err := c.DecodeStream(full, &out, 10); err == nil {
		t.Error("truncated shard streams accepted")
	}
}

// TestStreamOneByteReaders drives EncodeStream and DecodeStream through
// io.Reader implementations that return one byte at a time (testing/iotest),
// catching any short-read assumptions in the stripe assembly loops.
func TestStreamOneByteReaders(t *testing.T) {
	c := newSmall(t, 3, 2)
	size := c.DataSize() + 77
	src := make([]byte, size)
	rand.New(rand.NewSource(8)).Read(src)

	sinks := make([]*bytes.Buffer, 5)
	writers := make([]io.Writer, 5)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	n, err := c.EncodeStream(iotest.OneByteReader(bytes.NewReader(src)), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("consumed %d want %d", n, size)
	}
	readers := make([]io.Reader, 5)
	for i := range sinks {
		readers[i] = iotest.OneByteReader(bytes.NewReader(sinks[i].Bytes()))
	}
	readers[1] = nil // and a loss on top
	var out bytes.Buffer
	if err := c.DecodeStream(readers, &out, n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("one-byte-reader round trip corrupted data")
	}
}

// TestStreamSourceError: a failing source mid-stream surfaces the error.
func TestStreamSourceError(t *testing.T) {
	c := newSmall(t, 3, 2)
	ws := make([]io.Writer, 5)
	for i := range ws {
		ws[i] = &bytes.Buffer{}
	}
	src := io.MultiReader(
		bytes.NewReader(make([]byte, c.DataSize())), // one clean stripe
		iotest.ErrReader(errors.New("disk error")),
	)
	if _, err := c.EncodeStream(src, ws); err == nil {
		t.Error("source error swallowed")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestStreamWriterFailurePropagates(t *testing.T) {
	c := newSmall(t, 4, 2)
	src := make([]byte, c.DataSize())
	ws := make([]io.Writer, 6)
	for i := range ws {
		ws[i] = &bytes.Buffer{}
	}
	ws[3] = &failWriter{after: 0}
	if _, err := c.EncodeStream(bytes.NewReader(src), ws); err == nil {
		t.Error("writer failure swallowed")
	}
}
