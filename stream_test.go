package gemmec

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/iotest"
)

func streamRoundTrip(t *testing.T, c *Code, size int, lose []int, opts ...StreamOption) {
	t.Helper()
	src := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(src)

	sinks := make([]*bytes.Buffer, c.K()+c.R())
	writers := make([]io.Writer, len(sinks))
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	n, err := c.EncodeStream(bytes.NewReader(src), writers, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("EncodeStream consumed %d, want %d", n, size)
	}
	// Every shard stream has the same length: stripes * unit.
	want := sinks[0].Len()
	for i, s := range sinks {
		if s.Len() != want {
			t.Fatalf("shard %d has %d bytes, shard 0 has %d", i, s.Len(), want)
		}
	}

	readers := make([]io.Reader, len(sinks))
	for i := range sinks {
		readers[i] = bytes.NewReader(sinks[i].Bytes())
	}
	for _, i := range lose {
		readers[i] = nil
	}
	var out bytes.Buffer
	if err := c.DecodeStream(readers, &out, n, opts...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatalf("size=%d lose=%v: decoded stream differs", size, lose)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	c := newSmall(t, 4, 2)
	stripe := c.DataSize()
	for _, size := range []int{0, 1, c.UnitSize(), stripe - 1, stripe, stripe + 1, 3*stripe + 1234} {
		streamRoundTrip(t, c, size, nil)
	}
}

func TestStreamDegradedDecode(t *testing.T) {
	c := newSmall(t, 4, 2)
	size := 2*c.DataSize() + 999
	for _, lose := range [][]int{{0}, {3}, {4}, {0, 5}, {1, 2}} {
		streamRoundTrip(t, c, size, lose)
	}
}

// TestStreamPipelinedRoundTrip re-runs the round-trip matrix through the
// concurrent pipeline: multiple workers, a shared stripe pool, and losses.
func TestStreamPipelinedRoundTrip(t *testing.T) {
	c := newSmall(t, 4, 2)
	pool, err := c.NewStreamPool()
	if err != nil {
		t.Fatal(err)
	}
	stripe := c.DataSize()
	for _, workers := range []int{2, 4} {
		opts := []StreamOption{WithStreamWorkers(workers), WithStreamPool(pool)}
		for _, size := range []int{0, 1, stripe - 1, stripe, 5*stripe + 1234} {
			streamRoundTrip(t, c, size, nil, opts...)
		}
		streamRoundTrip(t, c, 3*stripe+77, []int{1, 4}, opts...)
	}
}

// TestStreamOrderIdentical: pipelined encode output must be byte-identical
// to the serial path — the in-order writer reorders completed stripes by
// sequence number. BenchmarkEncodeStream's speedup claim depends on this.
func TestStreamOrderIdentical(t *testing.T) {
	c := newSmall(t, 4, 2)
	size := 17*c.DataSize() + 4321
	src := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(src)

	encode := func(workers int) [][]byte {
		sinks := make([]*bytes.Buffer, 6)
		writers := make([]io.Writer, 6)
		for i := range sinks {
			sinks[i] = &bytes.Buffer{}
			writers[i] = sinks[i]
		}
		n, err := c.EncodeStream(bytes.NewReader(src), writers, WithStreamWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(size) {
			t.Fatalf("workers=%d consumed %d want %d", workers, n, size)
		}
		out := make([][]byte, 6)
		for i := range sinks {
			out[i] = sinks[i].Bytes()
		}
		return out
	}

	serial := encode(1)
	for _, workers := range []int{2, 4, 8} {
		got := encode(workers)
		for i := range serial {
			if !bytes.Equal(serial[i], got[i]) {
				t.Fatalf("workers=%d: shard %d differs from serial encode", workers, i)
			}
		}
	}
}

// TestStreamStats: both directions fill the caller's StreamStats with the
// pipeline geometry and byte/stripe accounting.
func TestStreamStats(t *testing.T) {
	c := newSmall(t, 4, 2)
	size := 7*c.DataSize() + 5
	src := make([]byte, size)
	rand.New(rand.NewSource(11)).Read(src)
	sinks := make([]*bytes.Buffer, 6)
	writers := make([]io.Writer, 6)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	var st StreamStats
	n, err := c.EncodeStream(bytes.NewReader(src), writers, WithStreamWorkers(3), WithStreamStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stripes != 8 || st.BytesIn != n || st.Workers != 3 || st.Depth < 3 || st.Elapsed <= 0 {
		t.Fatalf("encode stats not populated: %+v", st)
	}
	if st.BytesOut != int64(8*(c.DataSize()+c.ParitySize())) {
		t.Fatalf("encode stats BytesOut = %d", st.BytesOut)
	}

	readers := make([]io.Reader, 6)
	for i := range sinks {
		readers[i] = bytes.NewReader(sinks[i].Bytes())
	}
	readers[2] = nil
	var dst bytes.Buffer
	var decSt StreamStats
	if err := c.DecodeStream(readers, &dst, n, WithStreamWorkers(2), WithStreamStats(&decSt)); err != nil {
		t.Fatal(err)
	}
	if decSt.Stripes != 8 || decSt.BytesOut != n || decSt.Workers != 2 || decSt.Elapsed <= 0 {
		t.Fatalf("decode stats not populated: %+v", decSt)
	}
}

// TestStreamOptionValidation: invalid option values fail fast, before any
// I/O happens.
func TestStreamOptionValidation(t *testing.T) {
	c := newSmall(t, 4, 2)
	writers := make([]io.Writer, 6)
	for i := range writers {
		writers[i] = io.Discard
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), writers, WithStreamWorkers(0)); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), writers, WithStreamDepth(-1)); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), writers, WithStreamPool(nil)); err == nil {
		t.Error("nil pool accepted")
	}
	// A pool sized for a different geometry must be rejected.
	other := newSmall(t, 3, 1, WithUnitSize(512))
	pool, err := other.NewStreamPool()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), writers, WithStreamPool(pool)); err == nil {
		t.Error("wrong-geometry pool accepted")
	}
}

// TestStreamSteadyStateAllocs: with a shared stream pool, streaming holds
// zero per-stripe allocations — the per-call cost is constant pipeline
// setup, independent of how many stripes flow through. This is the probe
// for the old bug where EncodeStream allocated data+parity every call.
func TestStreamSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c := newSmall(t, 4, 2)
	pool, err := c.NewStreamPool()
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]io.Writer, 6)
	for i := range writers {
		writers[i] = io.Discard
	}
	small := make([]byte, 4*c.DataSize())
	large := make([]byte, 64*c.DataSize())
	rd := bytes.NewReader(nil)
	run := func(payload []byte) float64 {
		return testing.AllocsPerRun(20, func() {
			rd.Reset(payload)
			if _, err := c.EncodeStream(rd, writers, WithStreamWorkers(1), WithStreamPool(pool)); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(small) // warm the stripe pool and kernel scratch pool
	a4, a64 := run(small), run(large)
	if perStripe := (a64 - a4) / 60; perStripe > 0.05 {
		t.Fatalf("steady-state streaming allocates %.2f/stripe (4 stripes: %.0f allocs, 64 stripes: %.0f)", perStripe, a4, a64)
	}
	if a4 > 8 {
		t.Fatalf("per-call setup allocates %.0f, want a small constant", a4)
	}
}

// encodeToShards encodes src and returns the shard byte slices plus the
// per-shard, per-stripe CRC32C sums a manifest would record.
func encodeToShards(t *testing.T, c *Code, src []byte) ([][]byte, [][]uint32) {
	t.Helper()
	n := c.K() + c.R()
	sinks := make([]*bytes.Buffer, n)
	writers := make([]io.Writer, n)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	if _, err := c.EncodeStream(bytes.NewReader(src), writers, WithStreamWorkers(1)); err != nil {
		t.Fatal(err)
	}
	tab := crc32.MakeTable(crc32.Castagnoli)
	unit := c.UnitSize()
	shards := make([][]byte, n)
	sums := make([][]uint32, n)
	for i, s := range sinks {
		shards[i] = s.Bytes()
		for off := 0; off+unit <= len(shards[i]); off += unit {
			sums[i] = append(sums[i], crc32.Checksum(shards[i][off:off+unit], tab))
		}
	}
	return shards, sums
}

// crcVerifier is the test's stand-in for a v2 manifest: per-unit CRC32C.
type crcVerifier struct {
	tab  *crc32.Table
	sums [][]uint32
}

func (v *crcVerifier) VerifyUnit(shard int, stripe int64, unit []byte) error {
	if crc32.Checksum(unit, v.tab) != v.sums[shard][stripe] {
		return fmt.Errorf("unit crc mismatch: %w", ErrCorruptShard)
	}
	return nil
}

func newCRCVerifier(sums [][]uint32) *crcVerifier {
	return &crcVerifier{tab: crc32.MakeTable(crc32.Castagnoli), sums: sums}
}

// countingReader counts the bytes drained from an underlying reader.
// Atomic because the pipeline's reader goroutine updates it while test
// assertions (and the TTFB probe on the writer side) read it.
type countingReader struct {
	r *bytes.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// TestDecodeStreamSinglePass: a verified decode reads every shard byte
// exactly once — verification is folded into the decode pass, not a
// separate hashing pass over the shards.
func TestDecodeStreamSinglePass(t *testing.T) {
	c := newSmall(t, 4, 2)
	src := make([]byte, 16*c.DataSize()+123)
	rand.New(rand.NewSource(31)).Read(src)
	shards, sums := encodeToShards(t, c, src)

	counters := make([]*countingReader, len(shards))
	readers := make([]io.Reader, len(shards))
	for i := range shards {
		counters[i] = &countingReader{r: bytes.NewReader(shards[i])}
		readers[i] = counters[i]
	}
	var out bytes.Buffer
	var st StreamStats
	err := c.DecodeStream(readers, &out, int64(len(src)),
		WithStreamWorkers(2), WithStreamVerifier(newCRCVerifier(sums)), WithStreamStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("verified decode corrupted data")
	}
	if len(st.Demoted) != 0 {
		t.Fatalf("clean shards demoted: %+v", st.Demoted)
	}
	for i, cr := range counters {
		if got := cr.n.Load(); got != int64(len(shards[i])) {
			t.Errorf("shard %d: %d bytes read, want exactly one pass of %d", i, got, len(shards[i]))
		}
	}
}

// TestDecodeStreamTTFB: the first decoded byte reaches dst after O(stripe)
// shard I/O, not after the whole object has been read — the property that
// makes large-object GET latency flat in object size.
func TestDecodeStreamTTFB(t *testing.T) {
	c := newSmall(t, 4, 2)
	const stripes = 64
	src := make([]byte, stripes*c.DataSize())
	rand.New(rand.NewSource(32)).Read(src)
	shards, sums := encodeToShards(t, c, src)

	for _, workers := range []int{1, 2} {
		counters := make([]*countingReader, len(shards))
		readers := make([]io.Reader, len(shards))
		for i := range shards {
			counters[i] = &countingReader{r: bytes.NewReader(shards[i])}
			readers[i] = counters[i]
		}
		var atFirstByte int64
		probe := &firstWriteProbe{onFirst: func() {
			for _, cr := range counters {
				atFirstByte += cr.n.Load()
			}
		}}
		err := c.DecodeStream(readers, probe, int64(len(src)),
			WithStreamWorkers(workers), WithStreamDepth(2), WithStreamVerifier(newCRCVerifier(sums)))
		if err != nil {
			t.Fatal(err)
		}
		// The pipeline may run ahead by its depth plus in-flight workers;
		// anything O(a few stripes) passes, a whole-object pre-read (64
		// stripes here) fails.
		budget := int64(8 * len(shards) * c.UnitSize())
		if atFirstByte == 0 || atFirstByte > budget {
			t.Errorf("workers=%d: %d shard bytes read before first output byte, budget %d",
				workers, atFirstByte, budget)
		}
	}
}

// firstWriteProbe invokes onFirst before the first Write and discards the
// data.
type firstWriteProbe struct {
	onFirst func()
	wrote   bool
}

func (p *firstWriteProbe) Write(b []byte) (int, error) {
	if !p.wrote {
		p.wrote = true
		p.onFirst()
	}
	return len(b), nil
}

// TestStreamVerifierDemotion: a unit-level corruption caught by the
// verifier demotes the shard mid-stream and the decode still produces
// byte-identical output, reporting the demotion in the stats.
func TestStreamVerifierDemotion(t *testing.T) {
	c := newSmall(t, 4, 2)
	src := make([]byte, 5*c.DataSize()+7)
	rand.New(rand.NewSource(33)).Read(src)
	shards, sums := encodeToShards(t, c, src)
	shards[1][2*c.UnitSize()+3] ^= 0x80 // stripe 2 of shard 1

	readers := make([]io.Reader, len(shards))
	for i := range shards {
		readers[i] = bytes.NewReader(shards[i])
	}
	var out bytes.Buffer
	var st StreamStats
	err := c.DecodeStream(readers, &out, int64(len(src)),
		WithStreamWorkers(2), WithStreamVerifier(newCRCVerifier(sums)), WithStreamStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("output differs after mid-stream demotion")
	}
	if len(st.Demoted) != 1 || st.Demoted[0].Shard != 1 || st.Demoted[0].Stripe != 2 {
		t.Fatalf("Demoted = %+v, want shard 1 at stripe 2", st.Demoted)
	}
	if !errors.Is(st.Demoted[0], ErrShardDemoted) {
		t.Errorf("demotion %v does not match ErrShardDemoted", st.Demoted[0])
	}
	if !errors.Is(st.Demoted[0].Cause, ErrCorruptShard) {
		t.Errorf("demotion cause %v does not wrap ErrCorruptShard", st.Demoted[0].Cause)
	}
}

// TestDecodeStreamSteadyStateAllocs is the decode-side twin of
// TestStreamSteadyStateAllocs: with a shared pool, steady-state verified
// decoding (CRC per unit included) holds zero per-stripe allocations.
func TestDecodeStreamSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c := newSmall(t, 4, 2)
	pool, err := c.NewStreamPool()
	if err != nil {
		t.Fatal(err)
	}
	smallSrc := make([]byte, 4*c.DataSize())
	largeSrc := make([]byte, 64*c.DataSize())
	rand.New(rand.NewSource(34)).Read(largeSrc)
	copy(smallSrc, largeSrc)
	smallShards, smallSums := encodeToShards(t, c, smallSrc)
	largeShards, largeSums := encodeToShards(t, c, largeSrc)

	readers := make([]io.Reader, len(largeShards))
	raw := make([]*bytes.Reader, len(largeShards))
	for i := range raw {
		raw[i] = bytes.NewReader(nil)
		readers[i] = raw[i]
	}
	smallV, largeV := newCRCVerifier(smallSums), newCRCVerifier(largeSums)
	run := func(shards [][]byte, size int64, v *crcVerifier) float64 {
		return testing.AllocsPerRun(20, func() {
			for i := range raw {
				raw[i].Reset(shards[i])
			}
			err := c.DecodeStream(readers, io.Discard, size,
				WithStreamWorkers(1), WithStreamPool(pool), WithStreamVerifier(v))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	run(smallShards, int64(len(smallSrc)), smallV) // warm pools
	a4 := run(smallShards, int64(len(smallSrc)), smallV)
	a64 := run(largeShards, int64(len(largeSrc)), largeV)
	if perStripe := (a64 - a4) / 60; perStripe > 0.05 {
		t.Fatalf("steady-state verified decode allocates %.2f/stripe (4 stripes: %.0f allocs, 64 stripes: %.0f)",
			perStripe, a4, a64)
	}
	if a4 > 8 {
		t.Fatalf("per-call decode setup allocates %.0f, want a small constant", a4)
	}
}

// TestStreamConcurrent: many goroutines encode and degraded-decode through
// one Code and one shared pool at once. Run under -race this is the public
// API's pipeline stress test.
func TestStreamConcurrent(t *testing.T) {
	c := newSmall(t, 4, 2)
	pool, err := c.NewStreamPool()
	if err != nil {
		t.Fatal(err)
	}
	const streams = 6
	errs := make(chan error, streams)
	for g := 0; g < streams; g++ {
		go func(g int) {
			errs <- func() error {
				size := (3+g)*c.DataSize() + 13*g
				src := make([]byte, size)
				rand.New(rand.NewSource(int64(g))).Read(src)
				sinks := make([]*bytes.Buffer, 6)
				writers := make([]io.Writer, 6)
				for i := range sinks {
					sinks[i] = &bytes.Buffer{}
					writers[i] = sinks[i]
				}
				n, err := c.EncodeStream(bytes.NewReader(src), writers,
					WithStreamWorkers(2+g%3), WithStreamPool(pool))
				if err != nil {
					return err
				}
				readers := make([]io.Reader, 6)
				for i := range sinks {
					readers[i] = bytes.NewReader(sinks[i].Bytes())
				}
				readers[g%4] = nil
				var out bytes.Buffer
				if err := c.DecodeStream(readers, &out, n,
					WithStreamWorkers(2), WithStreamPool(pool)); err != nil {
					return err
				}
				if !bytes.Equal(out.Bytes(), src) {
					return errors.New("concurrent stream corrupted data")
				}
				return nil
			}()
		}(g)
	}
	for g := 0; g < streams; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	c := newSmall(t, 4, 2)
	var out bytes.Buffer

	if _, err := c.EncodeStream(bytes.NewReader(nil), make([]io.Writer, 3)); !errors.Is(err, ErrShardStreams) {
		t.Error("wrong writer count accepted")
	}
	ws := make([]io.Writer, 6)
	for i := 0; i < 5; i++ {
		ws[i] = &bytes.Buffer{}
	}
	if _, err := c.EncodeStream(bytes.NewReader(nil), ws); !errors.Is(err, ErrShardStreams) {
		t.Error("nil writer accepted")
	}

	if err := c.DecodeStream(make([]io.Reader, 3), &out, 0); !errors.Is(err, ErrShardStreams) {
		t.Error("wrong reader count accepted")
	}
	rs := make([]io.Reader, 6)
	rs[0] = bytes.NewReader(nil)
	if err := c.DecodeStream(rs, &out, 10); !errors.Is(err, ErrShardStreams) {
		t.Error("too few readers accepted")
	}
	full := make([]io.Reader, 6)
	for i := range full {
		full[i] = bytes.NewReader(nil)
	}
	if err := c.DecodeStream(full, &out, -1); err == nil {
		t.Error("negative size accepted")
	}
	// Truncated shard stream: decode must fail, not hang or corrupt.
	if err := c.DecodeStream(full, &out, 10); err == nil {
		t.Error("truncated shard streams accepted")
	}
}

// TestStreamOneByteReaders drives EncodeStream and DecodeStream through
// io.Reader implementations that return one byte at a time (testing/iotest),
// catching any short-read assumptions in the stripe assembly loops.
func TestStreamOneByteReaders(t *testing.T) {
	c := newSmall(t, 3, 2)
	size := c.DataSize() + 77
	src := make([]byte, size)
	rand.New(rand.NewSource(8)).Read(src)

	sinks := make([]*bytes.Buffer, 5)
	writers := make([]io.Writer, 5)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	n, err := c.EncodeStream(iotest.OneByteReader(bytes.NewReader(src)), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(size) {
		t.Fatalf("consumed %d want %d", n, size)
	}
	readers := make([]io.Reader, 5)
	for i := range sinks {
		readers[i] = iotest.OneByteReader(bytes.NewReader(sinks[i].Bytes()))
	}
	readers[1] = nil // and a loss on top
	var out bytes.Buffer
	if err := c.DecodeStream(readers, &out, n); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), src) {
		t.Fatal("one-byte-reader round trip corrupted data")
	}
}

// TestStreamSourceError: a failing source mid-stream surfaces the error.
func TestStreamSourceError(t *testing.T) {
	c := newSmall(t, 3, 2)
	ws := make([]io.Writer, 5)
	for i := range ws {
		ws[i] = &bytes.Buffer{}
	}
	src := io.MultiReader(
		bytes.NewReader(make([]byte, c.DataSize())), // one clean stripe
		iotest.ErrReader(errors.New("disk error")),
	)
	if _, err := c.EncodeStream(src, ws); err == nil {
		t.Error("source error swallowed")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestStreamWriterFailurePropagates(t *testing.T) {
	c := newSmall(t, 4, 2)
	src := make([]byte, c.DataSize())
	ws := make([]io.Writer, 6)
	for i := range ws {
		ws[i] = &bytes.Buffer{}
	}
	ws[3] = &failWriter{after: 0}
	if _, err := c.EncodeStream(bytes.NewReader(src), ws); err == nil {
		t.Error("writer failure swallowed")
	}
}
