package gemmec

import (
	"errors"
	"sync"
	"time"

	"gemmec/internal/autotune"
)

// RetuneReport summarizes one serving-loop retune: what the search found,
// whether the live executor was swapped, and the predicted-vs-measured
// throughput that tells an operator whether the tuner's cost model held up
// on the serving machine.
type RetuneReport struct {
	// Trials is how many schedule points the search measured.
	Trials int
	// Best is the winning schedule (now live when Swapped).
	Best Schedule
	// Swapped reports whether the winning schedule differs from the one
	// that was live before the retune. The executor is re-installed (and
	// the generation bumped) either way — see Retune.
	Swapped bool
	// Generation is the code's executor generation after the retune.
	Generation int64
	// PredictedGBps is the throughput of the best trial as measured on the
	// tuner's scratch operands.
	PredictedGBps float64
	// MeasuredGBps is the throughput re-measured on the live executor after
	// the swap (or on the unchanged executor when not swapped).
	MeasuredGBps float64
}

// tuneFileMu serializes load-modify-save cycles on tuning-cache files so
// concurrent Codes sharing one -tune-cache path cannot drop each other's
// records.
var tuneFileMu sync.Mutex

// Retune runs a bounded autotuner search for this code's shape and
// hot-swaps the compiled executor when the search beats the live schedule.
// The search is restricted to serial schedules — in a daemon the stripe
// scheduler owns parallelism, and a kernel spawning its own goroutines
// would allocate per stripe and oversubscribe the pool. In-flight
// Encode/Decode streams are unaffected: stripes that already loaded the
// old executor finish on it, subsequent stripes use the new one.
//
// When the code was built with WithTuningCache, the result is persisted to
// the same file so the next boot starts from it. Concurrent Retune calls
// on one Code serialize; the data path never blocks on them.
func (c *Code) Retune(trials int, seed int64) (RetuneReport, error) {
	if trials <= 0 {
		return RetuneReport{}, errors.New("gemmec: retune trials must be positive")
	}
	c.retuneMu.Lock()
	defer c.retuneMu.Unlock()

	tuner, err := c.eng.NewTuner(seed)
	if err != nil {
		return RetuneReport{}, err
	}
	tuner.SerialOnly()
	res, err := tuner.Tune(autotune.StrategyEvolutionary, trials)
	if err != nil {
		return RetuneReport{}, err
	}
	rep := RetuneReport{
		Trials:        len(res.History),
		Best:          fromParams(res.Best),
		PredictedGBps: autotune.GBps(c.DataSize(), res.BestTime),
	}
	// Install unconditionally: the generation counter then counts retunes
	// that reached the live path (what an operator wants to see move), and
	// Swapped distinguishes "schedule changed" from "search re-confirmed
	// the live one". The compile is idle-window work and costs ~ms.
	old := c.eng.Params()
	if err := c.eng.Reschedule(res.Best); err != nil {
		return rep, err
	}
	rep.Swapped = res.Best != old
	rep.Generation = c.eng.Generation()
	rep.MeasuredGBps = autotune.GBps(c.DataSize(), c.measureEncode(3))
	c.lastTune = res
	if c.cacheFile != "" {
		if err := c.saveTuningLocked(res); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// measureEncode times the live executor on pooled scratch operands,
// returning the minimum of reps runs after one warmup — the same
// noise-robust estimator the tuner uses, but on the executor that actually
// serves traffic.
func (c *Code) measureEncode(reps int) time.Duration {
	buf := c.getScratch()
	defer c.scratch.Put(buf)
	data := (*buf)[:c.DataSize()]
	parity := (*buf)[c.DataSize() : c.DataSize()+c.ParitySize()]
	best := time.Duration(0)
	for i := 0; i <= reps; i++ {
		start := time.Now()
		if err := c.eng.Encode(data, parity); err != nil {
			return 0
		}
		if d := time.Since(start); i > 0 && (best == 0 || d < best) {
			best = d
		}
	}
	return best
}

// ApplySchedule hot-swaps the compiled executor to an explicit schedule,
// which must be legal for this code's shape. Like Retune, the swap is
// atomic with respect to in-flight streams.
func (c *Code) ApplySchedule(s Schedule) error {
	p, err := s.toParams()
	if err != nil {
		return err
	}
	return c.eng.Reschedule(p)
}

// Generation returns how many times the executor has been hot-swapped
// since New (0 = still on the construction-time schedule).
func (c *Code) Generation() int64 { return c.eng.Generation() }

// SaveTuning persists the most recent Retune result to the code's tuning
// cache file. It is a no-op when the code has no cache file or has not
// retuned — shutdown hooks call it unconditionally.
func (c *Code) SaveTuning() error {
	c.retuneMu.Lock()
	defer c.retuneMu.Unlock()
	if c.cacheFile == "" || c.lastTune == nil {
		return nil
	}
	return c.saveTuningLocked(c.lastTune)
}

// saveTuningLocked load-modify-saves the cache file under the package file
// mutex; caller holds c.retuneMu.
func (c *Code) saveTuningLocked(res *autotune.Result) error {
	tuneFileMu.Lock()
	defer tuneFileMu.Unlock()
	cache, err := autotune.LoadCache(c.cacheFile)
	if err != nil {
		return err
	}
	m, kDim, n := c.eng.Shape()
	cache.Put(c.cacheKey, autotune.Record{
		M: m, K: kDim, N: n,
		Params: res.Best, Elapsed: res.BestTime, Trials: len(res.History),
	})
	return cache.Save(c.cacheFile)
}
